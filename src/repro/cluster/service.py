"""Sharded, replicated gallery service with failover and hedged requests.

:class:`ClusterService` is the supervised process group behind the
cluster matcher: a deterministic :class:`~repro.cluster.plan.ShardPlan`
partitions the gallery into N shards, each shard is packed once into its
own :class:`~repro.parallel.shm.SharedTrajectoryArena`, and every shard
is hosted by R replica worker processes that attach to the arena and
answer scoring requests over duplex pipes.

One query is a **scatter-gather**: the surviving candidate indices are
grouped by owning shard, each shard gets a request against one replica
(primaries rotate round-robin for load spread) under a per-shard slice
of the caller's :class:`~repro.serving.Budget`, and the gather loop
multiplexes the replica pipes with :func:`multiprocessing.connection.
wait`.  The loop absorbs every failure mode the single-process path
cannot:

* **replica death** (pipe EOF / SIGKILL mid-query) — the request fails
  over to a sibling replica with capped backoff; the dead worker is
  restarted in the background (re-attaching to the *same* arena — the
  corpus is never repacked) up to ``max_restarts`` times per replica.
* **slow replicas** — after a hedge delay (p95 of recent shard
  latencies, capped at 3× the median so one chronically slow replica
  cannot inflate its own hedge trigger) the request is *hedged* to a
  sibling; the first answer wins, and the loser's late reply is
  discarded by request id — counted (``hedges wasted``), never
  double-scored.
* **whole-shard loss** — when no replica of a shard can answer (all
  dead, restart budget exhausted, breaker open, or the budget expired),
  the shard is **skipped**: the query still returns, with
  ``coverage < 1`` and the skipped shard named in the
  :class:`ClusterReport`.  Partial results are explicit, never silent.

Per-replica :class:`~repro.serving.CircuitBreaker`\\ s keep a flapping
replica from being retried on every query, and a ``request_timeout_s``
backstop converts a *hung* (not dead) shard into a skip instead of a
hang even on unbudgeted queries.

When every replica is healthy the gathered scores are bitwise identical
to the single-process path: workers score the exact float64 arrays the
parent packed, through the same ``measure.similarity`` code.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from typing import Sequence

from ..obs import (
    Span,
    current_span,
    enabled as obs_enabled,
    get_registry,
    merge_into_registry,
    new_trace_id,
    span_from_payload,
    spans_to_chrome,
    trace_span,
)
from ..serving.breaker import CircuitBreaker
from ..serving.budget import Budget
from .plan import ShardPlan, gallery_keys

__all__ = ["ClusterReport", "ClusterService"]

#: Coverage histogram buckets: fraction of the gallery consulted.
_COVERAGE_BUCKETS = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


@dataclass
class ClusterReport:
    """Structured account of one scatter-gathered cluster query.

    ``coverage`` is the fraction of the *gallery* whose shard actually
    answered — 1.0 means every shard was consulted; anything lower names
    the skipped shards (and why) in ``events``.  ``shards_degraded``
    lists shards that answered but only through a failover or a worker
    restart — correct results, degraded path.

    ``trace`` is the query's stitched Chrome ``trace_event`` list (when
    observability is on): the parent's scatter-gather spans with every
    replica's scoring subtree — hedge losers included — nested under
    its dispatch span, all on one epoch-anchored timeline.
    """

    gallery_size: int = 0
    covered_size: int = 0
    shards_total: int = 0
    shards_done: int = 0
    shards_skipped: tuple[int, ...] = ()
    shards_degraded: tuple[int, ...] = ()
    hedges_fired: int = 0
    hedges_won: int = 0
    hedges_wasted: int = 0
    failovers: int = 0
    restarts: int = 0
    stale_responses: int = 0
    elapsed_ms: float = 0.0
    events: list[str] = field(default_factory=list)
    trace: list | None = None

    @property
    def coverage(self) -> float:
        """Fraction of the gallery consulted (1.0 = every shard answered)."""
        if self.gallery_size == 0:
            return 1.0
        return self.covered_size / self.gallery_size

    @property
    def ok(self) -> bool:
        """True when no shard was skipped or served via failover/restart.

        Hedging alone does not clear ``ok`` false: a hedge is routine
        tail-tolerance (the sibling may simply be faster today), while a
        failover or restart means a replica actually failed.
        """
        return not self.shards_skipped and not self.shards_degraded

    def to_dict(self) -> dict:
        """JSON-able view of the report (events included)."""
        return {
            "gallery_size": self.gallery_size,
            "covered_size": self.covered_size,
            "coverage": self.coverage,
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "shards_skipped": list(self.shards_skipped),
            "shards_degraded": list(self.shards_degraded),
            "hedges_fired": self.hedges_fired,
            "hedges_won": self.hedges_won,
            "hedges_wasted": self.hedges_wasted,
            "failovers": self.failovers,
            "restarts": self.restarts,
            "stale_responses": self.stale_responses,
            "elapsed_ms": self.elapsed_ms,
            "events": list(self.events),
            "trace": self.trace,
        }

    def summary(self) -> str:
        """One-line human summary: healthy, or what degraded and by how much."""
        if self.ok:
            return (
                f"healthy: {self.shards_done}/{self.shards_total} shard(s), "
                f"coverage {self.coverage:.0%}"
            )
        return (
            f"degraded: coverage {self.coverage:.2%}, "
            f"skipped {list(self.shards_skipped)}, "
            f"degraded {list(self.shards_degraded)}, "
            f"hedges {self.hedges_fired} fired/{self.hedges_won} won/"
            f"{self.hedges_wasted} wasted, {self.failovers} failover(s), "
            f"{self.restarts} restart(s)"
        )


class _LatencyTracker:
    """Recent per-shard response latencies → the hedge trigger delay.

    The hedge delay is the p95 of the last ``maxlen`` *winning* response
    latencies, floored (hedging on microsecond noise is pure overhead)
    and capped at 3× the median: a chronically slow replica contributes
    samples too, and without the cap it would drag p95 up to its own
    latency — disabling exactly the hedges meant to route around it.
    """

    def __init__(self, initial_s: float = 0.05, floor_s: float = 0.001, maxlen: int = 128):
        self.initial_s = float(initial_s)
        self.floor_s = float(floor_s)
        self._samples: deque[float] = deque(maxlen=maxlen)

    def observe(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def hedge_delay_s(self) -> float:
        if len(self._samples) < 8:
            return self.initial_s
        ordered = sorted(self._samples)

        def pct(q: float) -> float:
            pos = q * (len(ordered) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(ordered) - 1)
            return ordered[lo] + (pos - lo) * (ordered[hi] - ordered[lo])

        return max(self.floor_s, min(pct(0.95), 3.0 * pct(0.50)))


class _Replica:
    """Parent-side handle of one shard-replica worker."""

    def __init__(self, shard: int, replica: int):
        self.shard = shard
        self.replica = replica
        self.process = None
        self.conn = None
        self.restarts = 0
        self.log_path: str | None = None

    @property
    def key(self) -> tuple[int, int]:
        return (self.shard, self.replica)

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _ShardCall:
    """Gather-loop state of one shard's portion of a query."""

    def __init__(self, shard: int, local_cols: list[int], global_cols: list[int]):
        self.shard = shard
        self.local_cols = local_cols
        self.global_cols = global_cols
        self.done = False
        self.skipped_reason: str | None = None
        self.tried: set[int] = set()  # replica indices dispatched to
        self.inflight: dict[int, tuple[int, float]] = {}  # req_id -> (replica, sent_at)
        self.hedge_fired = False
        self.hedge_replica: int | None = None
        self.first_sent_at: float | None = None
        self.degraded = False


class ClusterService:
    """Supervised N×R shard worker group bound to one gallery.

    Parameters
    ----------
    measure:
        The similarity measure; must pickle (workers are processes).
    gallery:
        The trajectory corpus to shard.  The service is *bound* to these
        objects: queries score against the packed copies, and
        :meth:`matches_gallery` lets callers verify identity.
    n_shards, n_replicas:
        Cluster topology (``plan`` overrides both).
    plan:
        An explicit :class:`~repro.cluster.plan.ShardPlan`.
    hedge:
        Enable hedged requests (on by default).
    hedge_initial_ms:
        Hedge delay used before enough latency samples accumulate.
    max_restarts:
        Restart budget *per replica*; 0 disables restarts.
    request_timeout_s:
        Backstop per shard attempt: a replica that neither answers nor
        dies within this window is treated as failed (hung), so even an
        unbudgeted query cannot hang on a wedged shard.
    breaker:
        Per-replica :class:`~repro.serving.CircuitBreaker` (a default
        one is built when omitted).
    log_dir:
        Directory for per-worker log files (default: the
        ``REPRO_CLUSTER_LOG_DIR`` environment variable, if set).  The CI
        chaos job uploads these on failure.
    worker_faults:
        Test hook: ``{(shard, replica): config}`` dicts merged into the
        worker config — ``delay_s`` (slow replica) and
        ``crash_on_score`` (SIGKILL on the k-th request).  Faults apply
        to the *first* incarnation only; restarted workers are clean.
    """

    def __init__(
        self,
        measure,
        gallery: Sequence,
        n_shards: int = 2,
        n_replicas: int = 2,
        plan: ShardPlan | None = None,
        hedge: bool = True,
        hedge_initial_ms: float = 50.0,
        max_restarts: int = 2,
        restart_backoff_base: float = 0.05,
        restart_backoff_max: float = 1.0,
        request_timeout_s: float = 30.0,
        breaker: CircuitBreaker | None = None,
        registry=None,
        log_dir: str | None = None,
        worker_faults: dict | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.measure = measure
        self.plan = plan if plan is not None else ShardPlan(n_shards, n_replicas)
        self.hedge = bool(hedge)
        self.max_restarts = int(max_restarts)
        self.restart_backoff_base = float(restart_backoff_base)
        self.restart_backoff_max = float(restart_backoff_max)
        self.request_timeout_s = float(request_timeout_s)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            threshold=1, cooldown_base=0.25, cooldown_max=5.0, clock=clock
        )
        self.clock = clock
        self.sleep = sleep
        self._log_dir = log_dir or os.environ.get("REPRO_CLUSTER_LOG_DIR")
        self._worker_faults = dict(worker_faults or {})
        self._latency = _LatencyTracker(initial_s=hedge_initial_ms / 1000.0)
        self._req_ids = itertools.count(1)
        self._rr: dict[int, int] = {}
        self._closed = False
        # Per-query trace state: {"id": trace_id, "spans": {req_id: Span}}
        # while a query_scores call is live (queries are sequential).
        self._qtrace: dict | None = None
        # Dispatch spans whose worker subtree hadn't arrived when their
        # query ended (hedge losers still scoring): kept addressable so
        # a late reply stitches into the session forest, bounded below.
        self._trace_pending: dict[int, Span] = {}
        self._ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else None)

        reg = registry if registry is not None else (
            getattr(measure, "_registry", None) or get_registry()
        )
        self._registry = reg
        hedges = reg.counter(
            "repro_cluster_hedges_total", "Hedged shard requests by outcome"
        )
        self._m_hedge_fired = hedges.child(outcome="fired")
        self._m_hedge_won = hedges.child(outcome="won")
        self._m_hedge_wasted = hedges.child(outcome="wasted")
        self._m_restarts = reg.counter(
            "repro_cluster_shard_restarts_total",
            "Shard replica workers restarted after death",
        ).child()
        self._m_skipped = reg.counter(
            "repro_cluster_shard_skipped_total",
            "Shards skipped by a query (partial coverage)",
        ).child()
        self._m_failovers = reg.counter(
            "repro_cluster_failovers_total",
            "Shard requests re-dispatched to a sibling after replica failure",
        ).child()
        self._m_stale = reg.counter(
            "repro_cluster_stale_responses_total",
            "Late replies discarded by request id (hedge losers, dead requests)",
        ).child()
        self._h_coverage = reg.histogram(
            "repro_cluster_coverage",
            "Fraction of the gallery consulted per cluster query",
            buckets=_COVERAGE_BUCKETS,
        ).child()
        self._h_shard = reg.histogram(
            "repro_cluster_shard_seconds",
            "Per-shard response latency (winning replica)",
        ).child()

        # ---- shard the gallery and pack one arena per shard ----------
        self.gallery = list(gallery)
        self._keys = gallery_keys(self.gallery)
        self.fingerprint = self.plan.fingerprint(self._keys)
        self.shard_globals: list[list[int]] = self.plan.assign(self._keys)
        self._global_to_local: dict[int, tuple[int, int]] = {}
        for shard, members in enumerate(self.shard_globals):
            for local, global_idx in enumerate(members):
                self._global_to_local[global_idx] = (shard, local)
        self._arenas: list = [None] * self.plan.n_shards
        self._shard_galleries: list[list] = [
            [self.gallery[g] for g in members] for members in self.shard_globals
        ]
        from ..parallel.shm import SharedTrajectoryArena

        for shard, members in enumerate(self.shard_globals):
            if not members:
                continue
            try:
                self._arenas[shard] = SharedTrajectoryArena.pack(
                    self._shard_galleries[shard], registry=reg
                )
            except Exception:
                self._arenas[shard] = None  # fallback: ship the list itself

        # ---- spawn the worker group ----------------------------------
        self._replicas: dict[tuple[int, int], _Replica] = {}
        for shard in range(self.plan.n_shards):
            if not self.shard_globals[shard]:
                continue
            for r in range(self.plan.n_replicas):
                handle = _Replica(shard, r)
                self._replicas[(shard, r)] = handle
                self._spawn(handle, config=self._worker_faults.get((shard, r)))

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, handle: _Replica, config: dict | None = None) -> None:
        """Start (or restart) one worker, re-attaching the shard arena."""
        from .worker import worker_main

        config = dict(config or {})
        if self._log_dir:
            os.makedirs(self._log_dir, exist_ok=True)
            handle.log_path = os.path.join(
                self._log_dir, f"shard{handle.shard}-r{handle.replica}.log"
            )
            config.setdefault("log_path", handle.log_path)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        arena = self._arenas[handle.shard]
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                self.measure,
                arena.handle if arena is not None else None,
                None if arena is not None else self._shard_galleries[handle.shard],
                handle.shard,
                handle.replica,
                config,
            ),
            daemon=True,
            name=f"repro-shard{handle.shard}-r{handle.replica}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        # Wait briefly for the ready handshake so a query issued right
        # after construction doesn't race worker startup; a worker that
        # dies before readiness is caught on first dispatch instead.
        if parent_conn.poll(5.0):
            try:
                parent_conn.recv()  # ("ready", pid)
            except (EOFError, OSError):
                pass

    def _mark_dead(self, handle: _Replica) -> None:
        """Reap a dead/broken replica and open its breaker."""
        if handle.process is not None:
            try:
                handle.process.join(timeout=0.1)
            except Exception:
                pass
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        handle.process = None
        handle.conn = None
        self.breaker.record_timeout(handle.key)

    def _try_restart(self, handle: _Replica, report: ClusterReport) -> bool:
        """Restart a dead replica if its restart budget allows."""
        if handle.restarts >= self.max_restarts:
            return False
        delay = min(
            self.restart_backoff_max,
            self.restart_backoff_base * (2 ** handle.restarts),
        )
        if delay > 0:
            self.sleep(delay)
        handle.restarts += 1
        # Restarted incarnations never re-apply the injected fault: the
        # chaos harness kills a worker once, and the replacement is clean.
        self._spawn(handle, config=None)
        self.breaker.record_success(handle.key)
        self._m_restarts.inc()
        report.restarts += 1
        report.events.append(
            f"restarted shard {handle.shard} replica {handle.replica} "
            f"(restart {handle.restarts}/{self.max_restarts})"
        )
        return True

    # ------------------------------------------------------------------
    # Dispatch helpers
    # ------------------------------------------------------------------
    def _pick_replica(self, sc: _ShardCall, report: ClusterReport) -> _Replica | None:
        """The next viable replica for this shard call, restarting if needed.

        Preference order: untried live replicas whose breaker admits an
        attempt (starting from the shard's round-robin primary), then
        untried live replicas with an open breaker (when a shard would
        otherwise be skipped, a breaker is a hint, not a veto), then a
        restarted dead replica.  ``None`` means the shard is lost.
        """
        n = self.plan.n_replicas
        start = self._rr.get(sc.shard, 0)
        candidates = [
            self._replicas[(sc.shard, (start + k) % n)]
            for k in range(n)
            if (start + k) % n not in sc.tried
        ]
        for handle in candidates:
            if handle.alive() and self.breaker.allow(handle.key):
                return handle
        for handle in candidates:
            if handle.alive():
                return handle
        for handle in candidates:
            if not handle.alive() and self._try_restart(handle, report):
                return handle
        return None

    def _dispatch(
        self,
        sc: _ShardCall,
        handle: _Replica,
        query,
        deadline_wall: float | None,
        inflight: dict,
        is_hedge: bool,
    ) -> bool:
        """Send one score request; False when the replica is already dead."""
        req_id = next(self._req_ids)
        span = None
        if self._qtrace is not None:
            # Manually-managed span: concurrent in-flight dispatches
            # cannot share the tracer's thread-local stack.  It nests
            # under the open cluster.query span and is finished when the
            # reply (or the query) ends; the worker's scoring subtree is
            # stitched under it on arrival.
            span = Span(
                "cluster.dispatch",
                {
                    "shard": sc.shard,
                    "replica": handle.replica,
                    "hedge": is_hedge,
                    "pairs": len(sc.local_cols),
                },
                time.perf_counter(),
                threading.get_ident(),
            )
            parent = current_span()
            if parent is not None:
                parent.children.append(span)
        request = ("score", req_id, query, sc.local_cols, deadline_wall)
        if span is not None:
            request += ((self._qtrace["id"], span.span_id),)
        try:
            handle.conn.send(request)
        except (BrokenPipeError, OSError):
            if span is not None:
                span.attrs["failed"] = True
                span.finish()
            self._mark_dead(handle)
            return False
        if span is not None:
            self._qtrace["spans"][req_id] = span
        now = self.clock()
        if sc.first_sent_at is None:
            sc.first_sent_at = now
        sc.tried.add(handle.replica)
        sc.inflight[req_id] = (handle.replica, now)
        inflight[req_id] = sc
        if is_hedge:
            sc.hedge_fired = True
            sc.hedge_replica = handle.replica
        return True

    # ------------------------------------------------------------------
    # The scatter-gather query
    # ------------------------------------------------------------------
    def query_scores(
        self,
        query,
        cols: Sequence[int] | None = None,
        budget: Budget | None = None,
    ) -> tuple[dict[int, float], ClusterReport]:
        """Scores of ``query`` against gallery indices ``cols``, clustered.

        Returns ``(scores, report)``: ``scores`` maps each *covered*
        global gallery index to its similarity (bitwise identical to the
        single-process score), and ``report`` accounts for coverage,
        failover, hedging and skipped shards.  Indices owned by skipped
        shards are absent from ``scores`` — partial results are explicit.

        When observability is on the whole scatter-gather runs under a
        ``cluster.query`` span; each dispatch gets a child span, every
        replica's scoring subtree is stitched under its dispatch on
        reply, and the stitched Chrome trace lands in ``report.trace``.
        """
        if self._closed:
            raise RuntimeError("ClusterService is closed")
        trace_id = new_trace_id() if obs_enabled() else None
        # trace_span (not get_tracer().span) so a disabled run — or a
        # service constructed dark — skips the root span entirely.
        with trace_span("cluster.query", gallery=len(self.gallery)) as root:
            self._qtrace = {"id": trace_id, "spans": {}} if trace_id else None
            try:
                scores, report = self._query_scores_inner(query, cols, budget)
            finally:
                if self._qtrace is not None:
                    # Dispatches that never got a reply stay open until
                    # the query itself ends; they remain addressable so
                    # a late worker subtree still finds its parent.
                    for req_id, span in self._qtrace["spans"].items():
                        span.finish()
                        self._trace_pending[req_id] = span
                    while len(self._trace_pending) > 256:
                        self._trace_pending.pop(next(iter(self._trace_pending)))
                    self._qtrace = None
        if isinstance(root, Span):
            root.attrs["shards"] = report.shards_total
            root.attrs["coverage"] = round(report.coverage, 4)
            report.trace = spans_to_chrome([root], trace_id=trace_id)
        return scores, report

    def _query_scores_inner(
        self,
        query,
        cols: Sequence[int] | None,
        budget: Budget | None,
    ) -> tuple[dict[int, float], ClusterReport]:
        cols = list(range(len(self.gallery))) if cols is None else [int(c) for c in cols]
        report = ClusterReport(
            gallery_size=len(self.gallery), shards_total=0
        )
        t0 = self.clock()

        # Group requested columns by owning shard.
        per_shard: dict[int, _ShardCall] = {}
        for c in cols:
            shard, local = self._global_to_local[c]
            sc = per_shard.get(shard)
            if sc is None:
                sc = per_shard[shard] = _ShardCall(shard, [], [])
            sc.local_cols.append(local)
            sc.global_cols.append(c)
        # Shards with no requested columns still count as covered: their
        # members were consulted (filtered out upstream), not skipped.
        consulted = set(per_shard)
        report.shards_total = len(per_shard)
        report.covered_size = sum(
            len(members)
            for shard, members in enumerate(self.shard_globals)
            if members and shard not in consulted
        )

        self._drain_stale(report)
        scores: dict[int, float] = {}
        if per_shard:
            self._gather(query, per_shard, budget, scores, report)
        for shard, sc in per_shard.items():
            self._rr[shard] = (self._rr.get(shard, 0) + 1) % max(1, self.plan.n_replicas)
            if sc.done:
                report.shards_done += 1
                report.covered_size += len(self.shard_globals[shard])
                if sc.degraded:
                    report.shards_degraded += (shard,)
            else:
                report.shards_skipped += (shard,)
                self._m_skipped.inc()
                report.events.append(
                    f"skipped shard {shard}: {sc.skipped_reason or 'unavailable'}"
                )
        report.shards_skipped = tuple(sorted(report.shards_skipped))
        report.shards_degraded = tuple(sorted(report.shards_degraded))
        report.elapsed_ms = (self.clock() - t0) * 1000.0
        self._h_coverage.observe(report.coverage)
        return scores, report

    def _gather(
        self,
        query,
        per_shard: dict[int, _ShardCall],
        budget: Budget | None,
        scores: dict[int, float],
        report: ClusterReport,
    ) -> None:
        bounded = budget is not None and budget.bounded
        if bounded:
            budget.start()
        inflight: dict[int, _ShardCall] = {}

        def deadline_wall() -> float | None:
            if not bounded:
                return None
            remaining = budget.remaining_ms()
            if remaining == float("inf"):
                return None
            return time.time() + remaining / 1000.0

        # Initial scatter: one request per shard, under a per-shard slice
        # of the remaining budget (the slices run concurrently, so each
        # shard may use the full remaining window).
        for sc in per_shard.values():
            self._scatter_one(sc, query, deadline_wall(), inflight, report)

        hedge_delay = self._latency.hedge_delay_s()
        while any(not sc.done and sc.skipped_reason is None for sc in per_shard.values()):
            pending = [
                sc for sc in per_shard.values()
                if not sc.done and sc.skipped_reason is None
            ]
            if bounded and budget.expired():
                for sc in pending:
                    sc.skipped_reason = "budget expired"
                break
            now = self.clock()
            # Pending shards with nothing in flight lost their replica —
            # fail over to the next one (or give up on the shard).
            for sc in pending:
                if not sc.inflight:
                    self._failover(sc, query, deadline_wall(), inflight, report)
            pending = [
                sc for sc in per_shard.values()
                if not sc.done and sc.skipped_reason is None
            ]
            if not pending:
                break

            timeout = 0.05
            if bounded:
                timeout = min(timeout, max(1e-3, budget.remaining_ms() / 1000.0))
            for sc in pending:
                if self.hedge and not sc.hedge_fired and sc.first_sent_at is not None:
                    timeout = min(
                        timeout,
                        max(1e-3, sc.first_sent_at + hedge_delay - now),
                    )
            conns = {
                h.conn: h for h in self._replicas.values() if h.alive() and h.conn
            }
            ready = conn_wait(list(conns), timeout=timeout) if conns else []
            for conn in ready:
                self._pump(conns[conn], inflight, scores, report)

            now = self.clock()
            for sc in pending:
                if sc.done or sc.skipped_reason is not None:
                    continue
                # Hung-request backstop: no reply and no death for the
                # whole window — treat the replica as failed.
                timed_out = [
                    req_id
                    for req_id, (_r, sent_at) in sc.inflight.items()
                    if now - sent_at > self.request_timeout_s
                ]
                for req_id in timed_out:
                    replica, _ = sc.inflight.pop(req_id)
                    inflight.pop(req_id, None)
                    self.breaker.record_timeout((sc.shard, replica))
                    report.events.append(
                        f"shard {sc.shard} replica {replica} timed out "
                        f"after {self.request_timeout_s}s"
                    )
                if timed_out and not sc.inflight:
                    self._failover(sc, query, deadline_wall(), inflight, report)
                    continue
                # Hedge: primary outstanding past the hedge delay.
                if (
                    self.hedge
                    and not sc.hedge_fired
                    and sc.inflight
                    and sc.first_sent_at is not None
                    and now - sc.first_sent_at >= hedge_delay
                ):
                    handle = self._pick_replica(sc, report)
                    if handle is not None and self._dispatch(
                        sc, handle, query, deadline_wall(), inflight, True
                    ):
                        report.hedges_fired += 1
                        self._m_hedge_fired.inc()
                        report.events.append(
                            f"hedged shard {sc.shard} to replica {handle.replica} "
                            f"after {hedge_delay * 1000.0:.1f} ms"
                        )

    def _scatter_one(self, sc, query, deadline_wall, inflight, report) -> None:
        """Dispatch a shard call to its first viable replica (or skip)."""
        while sc.skipped_reason is None and not sc.inflight:
            handle = self._pick_replica(sc, report)
            if handle is None:
                sc.skipped_reason = "no live replica (restart budget exhausted)"
                return
            if self._dispatch(sc, handle, query, deadline_wall, inflight, False):
                return

    def _failover(self, sc, query, deadline_wall, inflight, report) -> None:
        """Re-dispatch a shard call after its in-flight replica failed."""
        had = bool(sc.tried)
        self._scatter_one(sc, query, deadline_wall, inflight, report)
        if sc.inflight and had:
            report.failovers += 1
            self._m_failovers.inc()
            sc.degraded = True

    def _fold_replica_delta(self, handle: _Replica, delta) -> None:
        """Fold one replica's metric delta into the parent registry.

        Every reply's telemetry is folded — including hedge losers and
        stale replies — because the worker did that work regardless of
        whether its answer was used; a delta, once received, would
        otherwise be lost (the worker has already moved its baseline).
        """
        if delta:
            merge_into_registry(
                self._registry,
                delta,
                {
                    "process": "worker",
                    "shard": str(handle.shard),
                    "replica": str(handle.replica),
                },
            )

    def _absorb_reply_telemetry(self, handle: _Replica, msg) -> None:
        """Fold metrics and stitch the trace riding on one reply tuple."""
        if len(msg) < 2 or msg[0] not in ("score", "expired", "error", "pong"):
            return  # e.g. a late "ready" handshake drained as stale
        kind, req_id = msg[0], msg[1]
        trace_payload = None
        if kind == "score" and len(msg) > 3 and isinstance(msg[3], dict):
            self._fold_replica_delta(handle, msg[3].get("delta"))
            trace_payload = msg[3].get("trace")
        elif kind == "pong" and len(msg) > 3:
            self._fold_replica_delta(handle, msg[3])
        span = None
        if self._qtrace is not None:
            span = self._qtrace["spans"].pop(req_id, None)
            if span is not None:
                span.finish()
        if span is None:
            # The dispatch's query already ended (a hedge loser finishing
            # late): its span is closed but still stitches the subtree
            # into the session forest — the work was real.
            span = self._trace_pending.pop(req_id, None)
        if span is None:
            return
        if trace_payload:
            child = span_from_payload(trace_payload)
            if child is not None:
                span.children.append(child)

    def _pump(self, handle: _Replica, inflight, scores, report) -> None:
        """Drain every message currently readable on one replica pipe."""
        while True:
            try:
                if not handle.conn.poll(0):
                    return
                msg = handle.conn.recv()
            except (EOFError, OSError):
                # Replica died: fail over every request in flight on it.
                self._mark_dead(handle)
                for req_id, sc in list(inflight.items()):
                    entry = sc.inflight.get(req_id)
                    if entry is None or entry[0] != handle.replica or sc.shard != handle.shard:
                        continue
                    sc.inflight.pop(req_id, None)
                    inflight.pop(req_id, None)
                    report.events.append(
                        f"shard {sc.shard} replica {handle.replica} died mid-query"
                    )
                return
            kind, req_id = msg[0], msg[1]
            # Telemetry is absorbed before the staleness check: a hedge
            # loser's scoring work is real even when its answer is not.
            self._absorb_reply_telemetry(handle, msg)
            sc = inflight.pop(req_id, None)
            if sc is None or sc.done:
                report.stale_responses += 1
                self._m_stale.inc()
                continue
            replica, sent_at = sc.inflight.pop(req_id, (None, None))
            if kind == "score":
                sc.done = True
                if sent_at is not None:
                    elapsed = self.clock() - sent_at
                    self._latency.observe(elapsed)
                    self._h_shard.observe(elapsed)
                if replica is not None:
                    self.breaker.record_success((sc.shard, replica))
                for global_idx, value in zip(sc.global_cols, msg[2]):
                    scores[global_idx] = float(value)
                # Hedging is routine tail-tolerance, not degradation —
                # it adjusts hedges accounting but never marks the shard.
                if sc.hedge_fired:
                    if replica == sc.hedge_replica:
                        report.hedges_won += 1
                        self._m_hedge_won.inc()
                    else:
                        report.hedges_wasted += 1
                        self._m_hedge_wasted.inc()
                # Anything still in flight for this shard is now stale.
                for other in list(sc.inflight):
                    inflight.pop(other, None)
                sc.inflight.clear()
            elif kind == "expired":
                sc.skipped_reason = "per-shard budget expired in worker"
            else:  # "error"
                detail = msg[2] if len(msg) > 2 else ""
                if replica is not None:
                    self.breaker.record_timeout((sc.shard, replica))
                report.events.append(
                    f"shard {sc.shard} replica {replica} errored: {detail}"
                )

    def _drain_stale(self, report: ClusterReport) -> None:
        """Discard replies left over from previous queries (hedge losers)."""
        for handle in self._replicas.values():
            if not handle.alive() or handle.conn is None:
                continue
            try:
                while handle.conn.poll(0):
                    msg = handle.conn.recv()
                    if msg:
                        self._absorb_reply_telemetry(handle, msg)
                    report.stale_responses += 1
                    self._m_stale.inc()
            except (EOFError, OSError):
                self._mark_dead(handle)

    # ------------------------------------------------------------------
    # Introspection / health
    # ------------------------------------------------------------------
    def matches_gallery(self, gallery: Sequence) -> bool:
        """Whether this service was built from exactly these objects."""
        return len(gallery) == len(self.gallery) and all(
            a is b for a, b in zip(gallery, self.gallery)
        )

    def health_check(self, timeout_s: float = 2.0) -> dict:
        """Ping every replica; returns per-replica liveness."""
        out: dict = {}
        for key, handle in self._replicas.items():
            label = f"shard{key[0]}-r{key[1]}"
            if not handle.alive():
                out[label] = "dead"
                continue
            req_id = next(self._req_ids)
            try:
                handle.conn.send(("ping", req_id))
                deadline = self.clock() + timeout_s
                status = "unresponsive"
                while self.clock() < deadline:
                    if not handle.conn.poll(max(0.0, deadline - self.clock())):
                        break
                    msg = handle.conn.recv()
                    self._absorb_reply_telemetry(handle, msg)
                    if msg[0] == "pong" and msg[1] == req_id:
                        status = "alive"
                        break
                out[label] = status
            except (BrokenPipeError, EOFError, OSError):
                self._mark_dead(handle)
                out[label] = "dead"
        return out

    def worker_info(self, timeout_s: float = 5.0) -> dict:
        """Introspection payloads from every live replica (for tests)."""
        out: dict = {}
        for key, handle in self._replicas.items():
            label = f"shard{key[0]}-r{key[1]}"
            if not handle.alive():
                continue
            req_id = next(self._req_ids)
            try:
                handle.conn.send(("info", req_id))
                deadline = self.clock() + timeout_s
                while self.clock() < deadline:
                    if not handle.conn.poll(max(0.0, deadline - self.clock())):
                        break
                    msg = handle.conn.recv()
                    self._absorb_reply_telemetry(handle, msg)
                    if msg[0] == "info" and msg[1] == req_id:
                        out[label] = msg[2]
                        break
            except (BrokenPipeError, EOFError, OSError):
                self._mark_dead(handle)
        return out

    def replica_pids(self) -> dict[tuple[int, int], int | None]:
        """Worker pids by (shard, replica) — the chaos harness's kill list."""
        return {
            key: (h.process.pid if h.alive() else None)
            for key, h in self._replicas.items()
        }

    def kill_replica(self, shard: int, replica: int) -> bool:
        """SIGKILL one replica (fault injection; returns False if not alive)."""
        handle = self._replicas.get((shard, replica))
        if handle is None or not handle.alive():
            return False
        handle.process.kill()
        handle.process.join(timeout=5.0)
        return True

    # ------------------------------------------------------------------
    def pairwise(self, queries: Sequence, budget: Budget | None = None):
        """Score matrix ``S[i, j] = measure(queries[i], gallery[j])``.

        The cluster route behind ``STS.pairwise(cluster=...)``: each row
        is one scatter-gathered query.  Entries owned by a skipped shard
        come back NaN (the same partial-result convention as
        deadline-shed chunks in :mod:`repro.parallel`), and the per-row
        :class:`ClusterReport`\\ s are returned alongside the matrix.
        """
        import numpy as np

        out = np.full((len(queries), len(self.gallery)), np.nan)
        reports = []
        for i, row in enumerate(queries):
            scores, report = self.query_scores(row, budget=budget)
            for j, value in scores.items():
                out[i, j] = value
            reports.append(report)
        return out, reports

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and unlink the shard arenas (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._replicas.values():
            if handle.conn is not None:
                try:
                    handle.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for handle in self._replicas.values():
            if handle.process is not None:
                handle.process.join(timeout=2.0)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=2.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            handle.process = None
            handle.conn = None
        for arena in self._arenas:
            if arena is not None:
                arena.close()
        self._arenas = [None] * self.plan.n_shards

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self._replicas)} worker(s)"
        return (
            f"<ClusterService {self.plan} gallery={len(self.gallery)} "
            f"{state} fingerprint={self.fingerprint[:8]}>"
        )
