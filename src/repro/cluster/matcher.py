"""ClusterMatcher: filter-and-refine matching over a sharded service.

The cluster analogue of using :class:`~repro.index.matcher.
FilteredMatcher` directly: the same candidate filters run in-process
(they are cheap and need the whole gallery's metadata), while survivor
refinement is scatter-gathered across the :class:`~repro.cluster.
service.ClusterService`'s shard workers — with replica failover, hedged
requests and explicit partial-result coverage.  The returned
:class:`~repro.index.matcher.MatchReport` carries ``coverage``,
``shards_skipped``/``shards_degraded`` and the full per-query
:class:`~repro.cluster.service.ClusterReport` under ``report.cluster``.

With every replica healthy, ``query()`` is bitwise identical to the
single-process matcher over the same gallery.
"""

from __future__ import annotations

from typing import Sequence

from ..index.matcher import FilteredMatcher, MatchReport
from ..serving.budget import Budget
from .plan import ShardPlan
from .service import ClusterService

__all__ = ["ClusterMatcher"]


class ClusterMatcher:
    """Filtered matching served by a sharded, replicated worker group.

    Owns a :class:`ClusterService` bound to ``gallery`` (or adopts one
    passed via ``service=``) and a :class:`FilteredMatcher` configured to
    refine through it.  Filter knobs (``grid``, ``spatial_slack``,
    ``min_time_overlap``, ``signature_dilation``) pass through to the
    matcher; topology/hedging knobs pass through to the service.

    Close it (or use it as a context manager) to stop the workers and
    unlink the shard arenas.
    """

    def __init__(
        self,
        measure,
        gallery: Sequence,
        grid=None,
        spatial_slack: float | None = 0.0,
        min_time_overlap: float = 0.0,
        signature_dilation: int = 2,
        n_shards: int = 2,
        n_replicas: int = 2,
        plan: ShardPlan | None = None,
        hedge: bool = True,
        service: ClusterService | None = None,
        registry=None,
        **service_kwargs,
    ):
        if service is not None:
            if not service.matches_gallery(gallery):
                raise ValueError(
                    "provided ClusterService was packed from a different "
                    "gallery; build the matcher from the service's own corpus"
                )
            self.service = service
            self._owns_service = False
        else:
            self.service = ClusterService(
                measure,
                gallery,
                n_shards=n_shards,
                n_replicas=n_replicas,
                plan=plan,
                hedge=hedge,
                registry=registry,
                **service_kwargs,
            )
            self._owns_service = True
        # Hold the service's own gallery list so the identity check in
        # FilteredMatcher._score_survivors_cluster always passes.
        self.gallery = self.service.gallery
        self.matcher = FilteredMatcher(
            measure,
            grid=grid,
            spatial_slack=spatial_slack,
            min_time_overlap=min_time_overlap,
            signature_dilation=signature_dilation,
            cluster=self.service,
            registry=registry,
        )

    @property
    def plan(self) -> ShardPlan:
        return self.service.plan

    @property
    def fingerprint(self) -> str:
        return self.service.fingerprint

    def query(
        self,
        query,
        k: int | None = None,
        deadline: float | None = None,
        budget: Budget | None = None,
    ) -> MatchReport:
        """Rank the gallery against ``query`` through the cluster.

        Same contract as :meth:`FilteredMatcher.query`, with cluster
        semantics on top: the report's ``coverage`` states what fraction
        of the gallery was actually consulted, and candidates on skipped
        shards are absent (unknown), never silently zero-scored.
        """
        return self.matcher.query(
            query, self.gallery, k=k, deadline=deadline, budget=budget
        )

    def health_check(self, timeout_s: float = 2.0) -> dict:
        """Per-replica liveness, see :meth:`ClusterService.health_check`."""
        return self.service.health_check(timeout_s=timeout_s)

    def close(self) -> None:
        """Stop the worker group (only if this matcher created it)."""
        self.matcher.close()
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "ClusterMatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<ClusterMatcher {self.service!r}>"
