"""Sharded, replicated gallery serving with failover and hedged requests.

The cluster layer scales the Eq. 10 matching workload past one process:

* :class:`~repro.cluster.plan.ShardPlan` — deterministic rendezvous-hash
  placement of trajectory ids onto N shards × R replicas, fingerprinted.
* :class:`~repro.cluster.service.ClusterService` — the supervised worker
  group: one shared-memory arena per shard, R replica processes each,
  heartbeats, automatic restart + re-attach, per-replica circuit
  breakers, hedged requests, and explicit partial-result coverage.
* :class:`~repro.cluster.matcher.ClusterMatcher` — filter-and-refine
  matching (same filters as :class:`~repro.index.FilteredMatcher`) whose
  refine stage scatter-gathers across the service.

See ``docs/ROBUSTNESS.md`` ("Sharded serving & failover") for the
failover state machine, the hedging policy and coverage semantics.
"""

from .matcher import ClusterMatcher
from .plan import ShardPlan, gallery_keys
from .service import ClusterReport, ClusterService

__all__ = [
    "ClusterMatcher",
    "ClusterReport",
    "ClusterService",
    "ShardPlan",
    "gallery_keys",
]
