"""Shard worker process: serve scoring requests over one shard replica.

Each worker hosts one *replica* of one *shard*: it attaches (read-only)
to the shard's :class:`~repro.parallel.shm.SharedTrajectoryArena`,
rebuilds zero-copy trajectory views, and answers scoring requests over a
duplex :func:`multiprocessing.Pipe`.  Because the packed arrays hold the
exact float64 values of the parent's trajectories and scoring runs the
same ``measure.similarity`` code, every score is bitwise identical to
the single-process path — which is what lets the service treat replicas
as interchangeable and hedge requests freely.

Protocol (parent → worker / worker → parent), all tuples:

* ``("score", req_id, query, local_cols, deadline_wall)`` →
  ``("score", req_id, [scores])`` — or ``("expired", req_id)`` when the
  wall-clock deadline passed before scoring started, or
  ``("error", req_id, message)`` when scoring raised.
* ``("ping", req_id)`` → ``("pong", req_id, pid)`` — heartbeat.
* ``("info", req_id)`` → ``("info", req_id, payload)`` — introspection
  for tests: the worker's resolved ``n_jobs``, its scorer's worker
  count, and how many child processes it has (must be zero: shard
  workers never fork).
* ``("stop",)`` — clean shutdown (EOF on the pipe does the same).

The first thing a worker does is :func:`~repro.parallel.pool.
mark_cluster_worker`: any code inside the worker that sizes a pool
through :func:`~repro.parallel.pool.resolve_n_jobs` — including the
:class:`~repro.parallel.ParallelSTS` the worker scores through — is
clamped to ``n_jobs=1``.  Without the clamp, an N×R cluster whose
workers each open a per-CPU pool would fork N·R·cpus processes.
Workers are also spawned as daemons, so ``multiprocessing`` itself
refuses grandchildren as a second line of defense.

Test hooks (the chaos harness's fault injection) ride in the ``config``
dict: ``delay_s`` sleeps before answering each score request (a slow
replica), ``crash_on_score`` SIGKILLs the worker upon *receiving* the
k-th score request — after the request is committed to the pipe but
before any reply, the hardest mid-query death.  ``log_path`` redirects
the worker's stdout/stderr to a file for post-mortem artifacts.
"""

from __future__ import annotations

import os
import signal
import sys
import time
import traceback

__all__ = ["worker_main"]


def _child_process_count() -> int:
    """How many live child processes this worker has (Linux procfs)."""
    pid = os.getpid()
    path = f"/proc/{pid}/task/{pid}/children"
    try:
        with open(path) as handle:
            return len(handle.read().split())
    except OSError:
        return 0


def _redirect_output(log_path: str) -> None:
    """Point stdout/stderr at ``log_path`` (append, line-buffered)."""
    handle = open(log_path, "a", buffering=1)
    os.dup2(handle.fileno(), sys.stdout.fileno())
    os.dup2(handle.fileno(), sys.stderr.fileno())


def worker_main(
    conn,
    measure,
    arena_handle,
    fallback_gallery,
    shard: int,
    replica: int,
    config: dict | None = None,
) -> None:
    """Entry point of one shard-replica worker process.

    ``arena_handle`` names the shard's shared-memory arena; when it is
    ``None`` (arena packing failed in the parent) the worker scores the
    pickled/inherited ``fallback_gallery`` instead — slower to start,
    identical results.
    """
    config = config or {}
    if config.get("log_path"):
        _redirect_output(config["log_path"])

    from ..parallel.pool import mark_cluster_worker, resolve_n_jobs

    mark_cluster_worker()

    view = None
    if arena_handle is not None:
        from ..parallel.shm import SharedTrajectoryArena

        view = SharedTrajectoryArena.attach(arena_handle)
        gallery = view.gallery
    else:
        gallery = list(fallback_gallery or [])

    # Score through the same parallel engine the single-process path
    # offers — inside a cluster worker resolve_n_jobs clamps it to 1, so
    # this is the serial fast path and the worker never forks.
    from ..parallel.sts import ParallelSTS

    scorer = ParallelSTS(measure, n_jobs=-1)
    print(
        f"[cluster-worker] ready shard={shard} replica={replica} "
        f"pid={os.getpid()} n={len(gallery)} n_jobs={scorer.n_jobs} "
        f"arena={'yes' if view is not None else 'no'}",
        flush=True,
    )

    delay_s = float(config.get("delay_s", 0.0) or 0.0)
    crash_on_score = config.get("crash_on_score")
    scored = 0
    try:
        conn.send(("ready", os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "ping":
                conn.send(("pong", msg[1], os.getpid()))
                continue
            if kind == "info":
                conn.send(
                    (
                        "info",
                        msg[1],
                        {
                            "pid": os.getpid(),
                            "shard": shard,
                            "replica": replica,
                            "resolved_n_jobs": resolve_n_jobs(-1),
                            "scorer_n_jobs": scorer.n_jobs,
                            "child_processes": _child_process_count(),
                            "gallery_size": len(gallery),
                            "scored": scored,
                        },
                    )
                )
                continue
            if kind != "score":
                conn.send(("error", msg[1] if len(msg) > 1 else -1, f"unknown request {kind!r}"))
                continue
            _, req_id, query, local_cols, deadline_wall = msg
            scored += 1
            if crash_on_score is not None and scored >= int(crash_on_score):
                print(
                    f"[cluster-worker] injected crash shard={shard} "
                    f"replica={replica} on score #{scored}",
                    flush=True,
                )
                os.kill(os.getpid(), signal.SIGKILL)
            if delay_s > 0.0:
                time.sleep(delay_s)
            if deadline_wall is not None and time.time() > deadline_wall:
                conn.send(("expired", req_id))
                continue
            try:
                scores = scorer.query(query, gallery, cols=local_cols)
                conn.send(("score", req_id, [float(s) for s in scores]))
            except Exception as exc:
                traceback.print_exc()
                conn.send(("error", req_id, f"{type(exc).__name__}: {exc}"))
    finally:
        if view is not None:
            view.close()
        try:
            conn.close()
        except OSError:
            pass
