"""Shard worker process: serve scoring requests over one shard replica.

Each worker hosts one *replica* of one *shard*: it attaches (read-only)
to the shard's :class:`~repro.parallel.shm.SharedTrajectoryArena`,
rebuilds zero-copy trajectory views, and answers scoring requests over a
duplex :func:`multiprocessing.Pipe`.  Because the packed arrays hold the
exact float64 values of the parent's trajectories and scoring runs the
same ``measure.similarity`` code, every score is bitwise identical to
the single-process path — which is what lets the service treat replicas
as interchangeable and hedge requests freely.

Protocol (parent → worker / worker → parent), all tuples:

* ``("score", req_id, query, local_cols, deadline_wall[, trace_ctx])`` →
  ``("score", req_id, [scores], telemetry)`` — or ``("expired",
  req_id)`` when the wall-clock deadline passed before scoring started,
  or ``("error", req_id, message)`` when scoring raised.  ``trace_ctx``
  is the propagated ``(trace_id, parent_span_id)`` pair; ``telemetry``
  is ``{"pid", "delta", "trace"}`` — the worker's registry delta since
  its last flush plus its span subtree for this request, which the
  parent folds into the fleet-wide registry and stitches into the
  query's trace (see :mod:`repro.obs.aggregate`).  Delta-taking is
  throttled (``REPRO_OBS_DELTA_S``, default 0.25 s): replies inside the
  interval carry ``delta=None`` and the uncredited work rides the next
  flush.
* ``("ping", req_id)`` → ``("pong", req_id, pid, delta)`` — heartbeat,
  piggybacking any telemetry accumulated since the last flush; pings
  always flush, so a health-check drain leaves the parent's folded
  totals exact.
* ``("info", req_id)`` → ``("info", req_id, payload)`` — introspection
  for tests: the worker's resolved ``n_jobs``, its scorer's worker
  count, how many child processes it has (must be zero: shard workers
  never fork), and ``metrics`` — the worker's *cumulative* registry
  snapshot, the ground truth fleet aggregation is verified against.
* ``("stop",)`` — clean shutdown (EOF on the pipe does the same).

The first thing a worker does is :func:`~repro.parallel.pool.
mark_cluster_worker`: any code inside the worker that sizes a pool
through :func:`~repro.parallel.pool.resolve_n_jobs` — including the
:class:`~repro.parallel.ParallelSTS` the worker scores through — is
clamped to ``n_jobs=1``.  Without the clamp, an N×R cluster whose
workers each open a per-CPU pool would fork N·R·cpus processes.
Workers are also spawned as daemons, so ``multiprocessing`` itself
refuses grandchildren as a second line of defense.

Worker output is structured: one JSON object per line (UTC timestamp,
pid, level, shard/replica ids — see :mod:`repro.obs.logs`), written to
stdout or, when ``config["log_path"]`` is set (the
``REPRO_CLUSTER_LOG_DIR`` redirect), to the per-replica log file.
``repro obs logs <dir>`` merges and pretty-prints a directory of them.

Test hooks (the chaos harness's fault injection) ride in the ``config``
dict: ``delay_s`` sleeps before answering each score request (a slow
replica), ``crash_on_score`` SIGKILLs the worker upon *receiving* the
k-th score request — after the request is committed to the pipe but
before any reply, the hardest mid-query death.
"""

from __future__ import annotations

import os
import signal
import sys
import time
import traceback

__all__ = ["worker_main"]


def _child_process_count() -> int:
    """How many live child processes this worker has (Linux procfs)."""
    pid = os.getpid()
    path = f"/proc/{pid}/task/{pid}/children"
    try:
        with open(path) as handle:
            return len(handle.read().split())
    except OSError:
        return 0


def _redirect_output(log_path: str) -> None:
    """Point stdout/stderr at ``log_path`` (append, line-buffered)."""
    handle = open(log_path, "a", buffering=1)
    os.dup2(handle.fileno(), sys.stdout.fileno())
    os.dup2(handle.fileno(), sys.stderr.fileno())


def worker_main(
    conn,
    measure,
    arena_handle,
    fallback_gallery,
    shard: int,
    replica: int,
    config: dict | None = None,
) -> None:
    """Entry point of one shard-replica worker process.

    ``arena_handle`` names the shard's shared-memory arena; when it is
    ``None`` (arena packing failed in the parent) the worker scores the
    pickled/inherited ``fallback_gallery`` instead — slower to start,
    identical results.
    """
    config = config or {}
    if config.get("log_path"):
        _redirect_output(config["log_path"])

    from ..obs import DeltaSource, enabled as obs_enabled, get_registry, get_tracer
    from ..obs import JsonlLogger, merge_snapshots, span_payload
    from ..parallel.pool import mark_cluster_worker, resolve_n_jobs

    mark_cluster_worker()
    log = JsonlLogger(shard=shard, replica=replica)

    # Baselines primed at entry: a fork-started worker's registries are
    # fork copies that already carry the parent's pre-fork history, which
    # must never be re-credited as this worker's work.
    registries = [get_registry()]
    measure_registry = getattr(measure, "_registry", None)
    if measure_registry is not None and measure_registry is not registries[0]:
        registries.append(measure_registry)
    delta_sources = [DeltaSource(r, prime=True) for r in registries]

    # Computing a delta means snapshotting the whole registry, whose
    # cost grows with cache-collector count — too dear to pay on every
    # score reply.  Replies inside the interval piggyback None and the
    # uncredited work simply rides the next delta; heartbeat pongs
    # always flush, so a health-check drain still yields exact totals.
    delta_interval_s = float(os.environ.get("REPRO_OBS_DELTA_S", "0.25"))
    last_delta_at = 0.0

    def take_delta(flush: bool = False):
        nonlocal last_delta_at
        now = time.monotonic()
        if not flush and now - last_delta_at < delta_interval_s:
            return None
        last_delta_at = now
        deltas = [d for d in (s.delta() for s in delta_sources) if d]
        if not deltas:
            return None
        merged = deltas[0]
        for delta in deltas[1:]:
            merged = merge_snapshots(merged, delta)
        return merged

    def cumulative_snapshot():
        merged = {}
        for registry in registries:
            snap = registry.snapshot()
            merged = merge_snapshots(merged, snap) if merged else snap
        return merged

    view = None
    if arena_handle is not None:
        from ..parallel.shm import SharedTrajectoryArena

        view = SharedTrajectoryArena.attach(arena_handle)
        gallery = view.gallery
    else:
        gallery = list(fallback_gallery or [])

    # Score through the same parallel engine the single-process path
    # offers — inside a cluster worker resolve_n_jobs clamps it to 1, so
    # this is the serial fast path and the worker never forks.
    from ..parallel.sts import ParallelSTS

    scorer = ParallelSTS(measure, n_jobs=-1)
    log.info(
        "ready",
        n=len(gallery),
        n_jobs=scorer.n_jobs,
        arena=view is not None,
    )

    tracer = get_tracer()
    delay_s = float(config.get("delay_s", 0.0) or 0.0)
    crash_on_score = config.get("crash_on_score")
    scored = 0
    try:
        conn.send(("ready", os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "ping":
                conn.send(("pong", msg[1], os.getpid(), take_delta(flush=True)))
                continue
            if kind == "info":
                conn.send(
                    (
                        "info",
                        msg[1],
                        {
                            "pid": os.getpid(),
                            "shard": shard,
                            "replica": replica,
                            "resolved_n_jobs": resolve_n_jobs(-1),
                            "scorer_n_jobs": scorer.n_jobs,
                            "child_processes": _child_process_count(),
                            "gallery_size": len(gallery),
                            "scored": scored,
                            "metrics": cumulative_snapshot(),
                        },
                    )
                )
                continue
            if kind != "score":
                conn.send(("error", msg[1] if len(msg) > 1 else -1, f"unknown request {kind!r}"))
                continue
            req_id, query, local_cols, deadline_wall = msg[1:5]
            trace_ctx = msg[5] if len(msg) > 5 else None
            scored += 1
            if crash_on_score is not None and scored >= int(crash_on_score):
                log.warning("injected crash", score=scored)
                os.kill(os.getpid(), signal.SIGKILL)
            if delay_s > 0.0:
                time.sleep(delay_s)
            if deadline_wall is not None and time.time() > deadline_wall:
                conn.send(("expired", req_id))
                continue
            try:
                if obs_enabled():
                    with tracer.span(
                        "cluster.worker.score",
                        shard=shard,
                        replica=replica,
                        pairs=len(local_cols),
                    ) as span:
                        scores = scorer.query(query, gallery, cols=local_cols)
                    telemetry = {
                        "pid": os.getpid(),
                        "delta": take_delta(),
                        "trace": span_payload(
                            span,
                            trace_id=trace_ctx[0] if trace_ctx else None,
                            parent_span_id=trace_ctx[1] if trace_ctx else None,
                        ),
                    }
                else:
                    scores = scorer.query(query, gallery, cols=local_cols)
                    telemetry = None
                conn.send(("score", req_id, [float(s) for s in scores], telemetry))
            except Exception as exc:
                traceback.print_exc()
                log.error("score failed", error=f"{type(exc).__name__}: {exc}")
                conn.send(("error", req_id, f"{type(exc).__name__}: {exc}"))
    finally:
        if view is not None:
            view.close()
        try:
            conn.close()
        except OSError:
            pass
