"""Deterministic shard placement: rendezvous hashing of trajectory ids.

A gallery served by N shard workers needs a placement function with three
properties the cluster layer leans on:

* **deterministic across processes** — the parent that packs the shard
  arenas and any worker (or a later process resuming the service) must
  agree on where every trajectory lives.  Python's builtin ``hash`` is
  salted per process, so placement uses :func:`hashlib.blake2b` digests.
* **replicated** — every key lands on exactly one shard, and that shard
  is hosted by R replica workers holding identical copies; a query can
  be answered by any one of them.
* **minimal disruption** — growing the cluster from N to N+1 shards
  moves only ~1/(N+1) of the keys (the rendezvous/HRW property), so a
  resharding migration touches the smallest possible slice of the
  corpus.

The plan is *fingerprinted*: :meth:`ShardPlan.fingerprint` digests the
shard topology together with the key list, so a service can refuse to
re-attach workers to arenas packed under a different placement.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

__all__ = ["ShardPlan", "gallery_keys"]


def gallery_keys(gallery: Sequence) -> list[str]:
    """Stable placement keys for a trajectory collection.

    Uses each trajectory's ``object_id`` when every id is present and
    unique — placement then survives reordering and re-loading of the
    corpus.  Otherwise falls back to positional keys (``"#3"``), which
    are still deterministic for a fixed corpus order.
    """
    ids = [getattr(t, "object_id", None) for t in gallery]
    if all(ids) and len(set(ids)) == len(ids):
        return [str(i) for i in ids]
    return [f"#{k}" for k in range(len(gallery))]


def _weight(key: str, shard: int) -> int:
    """Rendezvous weight of ``key`` on ``shard`` (process-independent)."""
    digest = hashlib.blake2b(
        f"{key}\x00{shard}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class ShardPlan:
    """Rendezvous-hash placement of keys onto ``n_shards`` × ``n_replicas``.

    Each key is owned by exactly one shard (the highest-weight one), and
    every shard is hosted by ``n_replicas`` workers holding identical
    copies — so each key is served by exactly ``n_replicas`` distinct
    replicas.
    """

    n_shards: int
    n_replicas: int = 2

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {self.n_replicas}")

    # ------------------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """The shard owning ``key`` (highest rendezvous weight wins)."""
        return max(range(self.n_shards), key=lambda s: (_weight(key, s), s))

    def replicas_of(self, key: str) -> tuple[tuple[int, int], ...]:
        """The ``(shard, replica)`` workers that can serve ``key``."""
        shard = self.shard_of(key)
        return tuple((shard, r) for r in range(self.n_replicas))

    def assign(self, keys: Sequence[str]) -> list[list[int]]:
        """Partition key *positions* by owning shard.

        Returns ``n_shards`` lists; list ``s`` holds the indices into
        ``keys`` owned by shard ``s``, in original order — the layout the
        service packs each shard arena with (local index = position in
        the shard's list).
        """
        out: list[list[int]] = [[] for _ in range(self.n_shards)]
        for pos, key in enumerate(keys):
            out[self.shard_of(key)].append(pos)
        return out

    def fingerprint(self, keys: Sequence[str] | None = None) -> str:
        """Hex digest pinning the topology (and optionally the key list)."""
        h = hashlib.blake2b(digest_size=16)
        h.update(f"shards={self.n_shards};replicas={self.n_replicas}".encode())
        if keys is not None:
            for key in keys:
                h.update(b"\x00")
                h.update(str(key).encode("utf-8"))
        return h.hexdigest()

    def __str__(self) -> str:
        return f"ShardPlan({self.n_shards}x{self.n_replicas})"
