"""Command-line interface: ``repro-sts`` (or ``python -m repro``).

Subcommands::

    repro-sts list-measures
    repro-sts matching   --dataset taxi --size 30 --seed 0
    repro-sts experiment fig4 --dataset mall --size 20
    repro-sts report     --dataset mall --size 20 --out report.md
    repro-sts generate   --dataset taxi --size 50 --out corpus.csv
    repro-sts link       --queries q.csv --gallery g.csv --cell 3 --sigma 3 --top 3
    repro-sts events     --corpus c.csv --a device-1 --b device-2 --cell 3 --sigma 3
    repro-sts groups     --corpus c.csv --cell 3 --sigma 3
    repro-sts stream     --corpus c.csv --cell 3 --sigma 3 --wal-dir wal/ [--resume]
    repro-sts obs        [demo|slo|logs DIR] [--format text|prom|flame|chrome]
    repro-sts verify     [--paths ...] [--relations ...] [--report-out report.json]
                         [--input snap.json] [--check DUMP]

``experiment`` accepts the figure families of the paper's evaluation:
``fig4`` (= figs 4–5), ``fig6`` (= 6–7), ``fig8`` (= 8–9), ``fig10``,
``fig11`` and ``fig12`` (= 12–14); ``report`` runs them all and writes a
markdown report.  ``link`` and ``events`` operate on trajectory CSVs in
the library's flat ``object_id,x,y,t`` format.

Every subcommand accepts ``--metrics-out FILE`` to dump the metrics
registry when the command finishes (``.json`` → JSON snapshot, anything
else → Prometheus text) and ``--serve-metrics [HOST:]PORT`` to expose
``/metrics``, ``/metrics.json``, ``/healthz`` and ``/slo`` over HTTP
while the command runs.  ``obs`` runs a small instrumented demo, checks
SLO burn rates (``obs slo``), merges structured worker logs (``obs logs
DIR``) or validates an existing dump (``--check`` auto-detects Chrome
traces, JSON snapshots, SLO reports and Prometheus text); ``link
--explain`` prints each query's stitched span-tree latency breakdown.
See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.grid import Grid
from .core.noise import GaussianNoiseModel
from .core.sts import STS
from .datasets import (
    load_trajectories_csv_report,
    mall_dataset,
    save_trajectories_csv,
    taxi_dataset,
)
from .errors import ReproError
from .preprocess import sanitize_trajectories
from .eval import (
    ablation_experiment,
    build_matching_pair,
    cross_similarity_experiment,
    default_measures,
    evaluate_matching,
    grid_covering,
    grid_size_experiment,
    heterogeneous_rate_experiment,
    noise_experiment,
    render_markdown,
    run_all_experiments,
    sampling_rate_experiment,
)
from .similarity import available_measures

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig4": sampling_rate_experiment,
    "fig6": heterogeneous_rate_experiment,
    "fig8": noise_experiment,
    "fig10": ablation_experiment,
    "fig11": cross_similarity_experiment,
    "fig12": grid_size_experiment,
}


def _load_dataset(name: str, size: int, seed: int):
    if name == "taxi":
        return taxi_dataset(n_trajectories=size, seed=seed)
    if name == "mall":
        return mall_dataset(n_trajectories=size, seed=seed)
    raise SystemExit(f"unknown dataset {name!r} (expected 'taxi' or 'mall')")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sts",
        description="STS trajectory similarity (ICDE 2021) experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    obs_out = argparse.ArgumentParser(add_help=False)
    obs_out.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the metrics registry here when the command finishes "
        "(.json → JSON snapshot, anything else → Prometheus text)",
    )
    obs_out.add_argument(
        "--serve-metrics",
        default=None,
        metavar="[HOST:]PORT",
        help="serve /metrics, /metrics.json, /healthz and /slo over HTTP "
        "for the duration of the command (live exporter; default host "
        "127.0.0.1, port 0 picks an ephemeral port)",
    )

    sub.add_parser(
        "list-measures", parents=[obs_out], help="list registered similarity measures"
    )

    common = argparse.ArgumentParser(add_help=False, parents=[obs_out])
    common.add_argument("--dataset", choices=["taxi", "mall"], default="taxi")
    common.add_argument("--size", type=int, default=30, help="number of trajectories")
    common.add_argument("--seed", type=int, default=0)

    perf = argparse.ArgumentParser(add_help=False)
    perf.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="parallel workers for score matrices (-1 = all available CPUs; "
        "default: serial)",
    )
    perf.add_argument(
        "--shm",
        dest="shm",
        action="store_true",
        default=None,
        help="force the shared-memory corpus broadcast for parallel scoring "
        "(default: auto — used whenever the process backend is)",
    )
    perf.add_argument(
        "--no-shm",
        dest="shm",
        action="store_false",
        help="disable the shared-memory broadcast (pickle the corpus per worker)",
    )
    perf.add_argument(
        "--chunking",
        choices=["count", "cost"],
        default=None,
        help="chunk balancing for parallel scoring: equal pair counts "
        "(count, default) or near-equal estimated cost (|T1|·|T2|)",
    )

    matching = sub.add_parser(
        "matching", parents=[common, perf], help="run the trajectory-matching task"
    )
    matching.add_argument(
        "--methods",
        nargs="*",
        default=None,
        help="subset of methods (default: all seven)",
    )

    experiment = sub.add_parser(
        "experiment", parents=[common], help="reproduce one figure family"
    )
    experiment.add_argument("figure", choices=sorted(_EXPERIMENTS))

    generate = sub.add_parser(
        "generate", parents=[common], help="write a synthetic corpus to CSV"
    )
    generate.add_argument("--out", required=True, help="output CSV path")

    report = sub.add_parser(
        "report",
        parents=[common, perf],
        help="run all experiments, write markdown report",
    )
    report.add_argument("--out", default=None, help="output path (default: stdout)")
    report.add_argument(
        "--only", nargs="*", default=None, help="experiment ids (e.g. fig10 fig11)"
    )
    report.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal completed experiments here; an interrupted run "
        "pointed at the same directory resumes from the last good state",
    )

    on_error = argparse.ArgumentParser(add_help=False, parents=[obs_out])
    on_error.add_argument(
        "--on-error",
        choices=["raise", "skip", "repair"],
        default="raise",
        help="malformed/degenerate input policy: raise (default), "
        "skip bad records, or repair what is fixable",
    )

    link = sub.add_parser(
        "link",
        parents=[on_error, perf],
        help="link query trajectories to a gallery (STS)",
    )
    link.add_argument("--queries", required=True, help="queries CSV (object_id,x,y,t)")
    link.add_argument("--gallery", required=True, help="gallery CSV (object_id,x,y,t)")
    link.add_argument("--cell", type=float, required=True, help="grid cell size (m)")
    link.add_argument("--sigma", type=float, required=True, help="location noise σ (m)")
    link.add_argument("--top", type=int, default=3, help="candidates to print per query")
    link.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="wall-clock budget per query (ms); degrades/sheds instead of overrunning",
    )
    link.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="resident-memory ceiling (MiB); scoring degrades instead of OOMing",
    )
    link.add_argument(
        "--cluster-shards",
        type=int,
        default=None,
        help="serve the gallery from this many supervised shard workers "
        "(scatter-gather with failover + hedged requests; results carry "
        "explicit coverage)",
    )
    link.add_argument(
        "--cluster-replicas",
        type=int,
        default=2,
        help="replica workers per shard (default 2; only with --cluster-shards)",
    )
    link.add_argument(
        "--no-hedge",
        action="store_true",
        help="disable hedged requests on the cluster path (default: hedge "
        "slow shards to a sibling replica)",
    )
    link.add_argument(
        "--explain",
        action="store_true",
        help="print each query's span-tree latency breakdown (filter → "
        "refine; on the cluster path: per-shard fan-out, hedges and the "
        "workers' scoring subtrees) plus per-stage totals",
    )

    events = sub.add_parser(
        "events",
        parents=[on_error],
        help="co-location events between two objects (STS)",
    )
    events.add_argument("--corpus", required=True, help="trajectories CSV (object_id,x,y,t)")
    events.add_argument("--a", required=True, help="first object id")
    events.add_argument("--b", required=True, help="second object id")
    events.add_argument("--cell", type=float, required=True, help="grid cell size (m)")
    events.add_argument("--sigma", type=float, required=True, help="location noise σ (m)")
    events.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="co-location probability threshold (default: 10%% of self level)",
    )

    groups = sub.add_parser(
        "groups", parents=[on_error], help="detect co-moving groups in a corpus (STS)"
    )
    groups.add_argument("--corpus", required=True, help="trajectories CSV (object_id,x,y,t)")
    groups.add_argument("--cell", type=float, required=True, help="grid cell size (m)")
    groups.add_argument("--sigma", type=float, required=True, help="location noise σ (m)")
    groups.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="similarity threshold (default: 20%% of mean self-similarity)",
    )

    stream = sub.add_parser(
        "stream",
        parents=[on_error],
        help="replay a sighting CSV through the streaming detector "
        "(optionally journaled to a crash-safe write-ahead log)",
    )
    stream.add_argument("--corpus", required=True, help="sightings CSV (object_id,x,y,t)")
    stream.add_argument("--cell", type=float, required=True, help="grid cell size (m)")
    stream.add_argument("--sigma", type=float, required=True, help="location noise σ (m)")
    stream.add_argument("--window", type=float, default=600.0, help="sliding window (s)")
    stream.add_argument(
        "--threshold", type=float, default=0.0, help="only report pairs above this STS"
    )
    stream.add_argument(
        "--wal-dir",
        default=None,
        help="journal every accepted sighting to a write-ahead log in this "
        "directory; a crashed run restarted with --resume recovers exactly",
    )
    stream.add_argument(
        "--snapshot-every",
        type=int,
        default=512,
        help="journaled commands between automatic state snapshots (default 512)",
    )
    stream.add_argument(
        "--fsync-every",
        type=int,
        default=1,
        help="records per fsync: 1 (default) = every acknowledged sighting is "
        "durable; N trades <= N-1 tail records of staleness for throughput",
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help="recover detector state from --wal-dir before streaming: events "
        "at or before the recovered high-water mark (applied or still queued) "
        "are skipped as already seen",
    )

    obs = sub.add_parser(
        "obs",
        parents=[obs_out],
        help="inspect the instrumentation layer (demo run, dump viewer, validator)",
    )
    obs.add_argument(
        "action",
        nargs="?",
        choices=["demo", "slo", "logs"],
        default="demo",
        help="demo (default): run a small instrumented workload and render "
        "it; slo: evaluate the default SLO burn rates (against --input or "
        "a fresh demo run); logs: merge and pretty-print a directory of "
        "structured JSONL worker logs",
    )
    obs.add_argument(
        "path",
        nargs="?",
        default=None,
        help="log directory for the logs action",
    )
    obs.add_argument(
        "--format",
        choices=["text", "prom", "flame", "chrome"],
        default="text",
        help="demo output: rendered snapshot + flamegraph (text, default), "
        "Prometheus text (prom), flamegraph only (flame), or Chrome "
        "trace-event JSON (chrome)",
    )
    obs.add_argument(
        "--input",
        default=None,
        metavar="FILE",
        help="pretty-print an existing JSON metrics snapshot instead of running the demo",
    )
    obs.add_argument(
        "--check",
        default=None,
        metavar="FILE",
        help="validate an observability dump and exit non-zero on format "
        "errors; the format is auto-detected: Chrome trace-event JSON, "
        "JSON metrics snapshot, SLO report JSON, or Prometheus text",
    )

    verify = sub.add_parser(
        "verify",
        parents=[obs_out],
        help="differential verification: every execution path and "
        "metamorphic relation on the committed seed corpus",
    )
    verify.add_argument(
        "--paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="execution paths to check against the serial baseline "
        "(default: all; pass no names to skip the path matrix)",
    )
    verify.add_argument(
        "--relations",
        nargs="*",
        default=None,
        metavar="RELATION",
        help="metamorphic relations to run (default: all; pass no names "
        "to skip the relation suite)",
    )
    verify.add_argument(
        "--report-out",
        default=None,
        metavar="FILE",
        help="write the report to FILE — JSON for .json paths, "
        "markdown otherwise",
    )
    verify.add_argument(
        "--list",
        action="store_true",
        dest="list_checks",
        help="list available paths and relations, then exit",
    )

    return parser


def _apply_parallel_flags(args) -> None:
    """Install the --shm/--chunking choices as process-wide defaults."""
    shm = getattr(args, "shm", None)
    chunking = getattr(args, "chunking", None)
    if shm is not None or chunking is not None:
        from .parallel import set_parallel_defaults

        set_parallel_defaults(shm=shm, chunking=chunking)


def _load_corpus(path: str, on_error: str) -> list:
    """Load a CSV corpus through the sanitization gate, reporting skips."""
    trajectories, io_report = load_trajectories_csv_report(path, on_error=on_error)
    trajectories, gate_report = sanitize_trajectories(trajectories, on_error=on_error)
    skipped = io_report.skipped_records + io_report.skipped_trajectories
    if skipped or not gate_report.clean:
        print(
            f"{path}: skipped {io_report.skipped_records} malformed record(s), "
            f"{io_report.skipped_trajectories + gate_report.skipped_trajectories} "
            f"unusable trajectory(ies), repaired {gate_report.repaired}",
            file=sys.stderr,
        )
    return trajectories


def _grid_and_measure(trajectories, cell: float, sigma: float) -> STS:
    points = np.vstack([t.xy for t in trajectories])
    grid = Grid.covering(points, cell, margin=4.0 * sigma)
    return STS(grid, noise_model=GaussianNoiseModel(sigma))


def _run_link(args) -> int:
    from .index import FilteredMatcher

    queries = _load_corpus(args.queries, args.on_error)
    gallery = _load_corpus(args.gallery, args.on_error)
    if not queries or not gallery:
        raise SystemExit("link: queries and gallery must both be non-empty")
    measure = _grid_and_measure(queries + gallery, args.cell, args.sigma)
    _apply_parallel_flags(args)
    parallel = args.n_jobs is not None and args.n_jobs != 1
    if getattr(args, "cluster_shards", None) is not None:
        # Cluster serving: the gallery is sharded across supervised
        # replica workers; each query scatter-gathers with failover and
        # (unless --no-hedge) hedged requests.
        from .cluster import ClusterMatcher

        matcher = ClusterMatcher(
            measure,
            gallery,
            grid=measure.grid,
            spatial_slack=8.0 * args.sigma,
            n_shards=args.cluster_shards,
            n_replicas=args.cluster_replicas,
            hedge=not args.no_hedge,
        )
        gallery = matcher.gallery
        query_fn = lambda q, budget: matcher.query(q, k=args.top, budget=budget)
        print(
            f"cluster: {matcher.plan}, fingerprint {matcher.fingerprint[:12]}, "
            f"hedging {'off' if args.no_hedge else 'on'}",
            file=sys.stderr,
        )
    else:
        # With several queries against one gallery, a persistent pool pays
        # the gallery broadcast once and reuses warm workers per query.
        matcher = FilteredMatcher(
            measure,
            grid=measure.grid,
            spatial_slack=8.0 * args.sigma,
            n_jobs=args.n_jobs,
            shm=args.shm,
            chunking=args.chunking,
            persistent_pool=parallel and len(queries) > 1,
        )
        query_fn = lambda q, budget: matcher.query(q, gallery, k=args.top, budget=budget)
    bounded = args.deadline_ms is not None or args.max_rss_mb is not None
    with matcher:
        for query in queries:
            budget = None
            if bounded:
                from .serving import Budget

                budget = Budget(deadline_ms=args.deadline_ms, max_rss_mb=args.max_rss_mb)
            report = query_fn(query, budget)
            best = ", ".join(str(m) for m in report.matches) if report.matches else "(no candidates)"
            print(f"{query.object_id}: {best}   [{report}]")
            if getattr(args, "explain", False):
                if report.trace:
                    from .obs import render_trace_breakdown

                    print(render_trace_breakdown(report.trace, indent="    "))
                else:
                    print(
                        "  (no trace recorded — observability is off)",
                        file=sys.stderr,
                    )
            if report.coverage < 1.0:
                print(
                    f"  coverage: {report.coverage:.2%} — "
                    f"{report.cluster.summary() if report.cluster else 'partial result'}",
                    file=sys.stderr,
                )
            if report.health is not None and not report.health.ok:
                print(f"  health: {report.health.summary()}", file=sys.stderr)
    return 0


def _run_events(args) -> int:
    from .core.events import detect_colocation_events

    trajectories = {t.object_id: t for t in _load_corpus(args.corpus, args.on_error)}
    missing = [oid for oid in (args.a, args.b) if oid not in trajectories]
    if missing:
        raise SystemExit(f"events: object id(s) not in corpus: {missing}")
    a, b = trajectories[args.a], trajectories[args.b]
    measure = _grid_and_measure([a, b], args.cell, args.sigma)
    threshold = args.threshold
    if threshold is None:
        threshold = 0.1 * measure.similarity(a, a)
    found = detect_colocation_events(measure, a, b, threshold=threshold)
    print(f"STS({args.a}, {args.b}) = {measure.similarity(a, b):.4f}; threshold = {threshold:.4f}")
    if not found:
        print("no co-location events")
    for event in found:
        print(f"  {event}")
    return 0


def _run_groups(args) -> int:
    import numpy as _np

    from .groups import detect_groups

    trajectories = _load_corpus(args.corpus, args.on_error)
    if len(trajectories) < 2:
        raise SystemExit("groups: need at least two trajectories")
    measure = _grid_and_measure(trajectories, args.cell, args.sigma)
    threshold = args.threshold
    if threshold is None:
        self_levels = [measure.similarity(t, t) for t in trajectories]
        threshold = 0.2 * float(_np.mean(self_levels))
    result = detect_groups(measure, trajectories, threshold=threshold)
    print(
        f"{len(trajectories)} trajectories; scored {result.pairs_scored} pairs; "
        f"threshold {threshold:.4f}"
    )
    if not result.groups:
        print("no co-moving groups")
    for group in result.groups:
        members = ", ".join(trajectories[i].object_id or str(i) for i in group)
        print(f"  group: {{{members}}}")
    return 0


def _load_sightings(path: str):
    """Read a flat ``object_id,x,y,t`` CSV as time-ordered sighting events."""
    import csv

    from .streaming import SightingEvent

    events = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = [c for c in ("object_id", "x", "y", "t") if c not in (reader.fieldnames or [])]
        if missing:
            raise SystemExit(f"stream: {path} is missing column(s) {missing}")
        for row in reader:
            try:
                events.append(
                    SightingEvent(
                        row["object_id"], float(row["x"]), float(row["y"]), float(row["t"])
                    )
                )
            except (TypeError, ValueError):
                # Let the detector's on_error policy judge unparsable rows
                # as non-finite sightings rather than crashing the reader.
                events.append(
                    SightingEvent(row["object_id"] or "?", float("nan"), float("nan"), float("nan"))
                )
    events.sort(key=lambda e: e.t)
    return events


def _run_stream(args) -> int:
    import numpy as _np

    from .streaming import StreamingColocationDetector
    from .streaming_wal import StreamingWAL

    events = _load_sightings(args.corpus)
    if not events:
        raise SystemExit("stream: corpus holds no sightings")
    skip_until = float("-inf")
    if args.resume:
        if args.wal_dir is None:
            raise SystemExit("stream: --resume requires --wal-dir")
        detector = StreamingColocationDetector.recover(
            args.wal_dir,
            fsync_every=args.fsync_every,
            snapshot_every=args.snapshot_every,
        )
        report = detector.last_recovery
        # Skip past everything the WAL already holds — including sightings
        # that were offered but not yet drained when the crash hit; those
        # live in the recovered pending queue, not in stream_time.
        skip_until = detector.accepted_through
        print(
            f"recovered from {args.wal_dir}: {report.summary()} "
            f"({report.elapsed_s * 1000:.1f} ms); resuming after t={skip_until:.1f}",
            file=sys.stderr,
        )
    else:
        points = _np.array([[e.x, e.y] for e in events if np.isfinite(e.x) and np.isfinite(e.y)])
        grid = Grid.covering(points, args.cell, margin=4.0 * args.sigma)
        wal = None
        if args.wal_dir is not None:
            wal = StreamingWAL(
                args.wal_dir,
                fsync_every=args.fsync_every,
                snapshot_every=args.snapshot_every,
            )
        detector = StreamingColocationDetector(
            grid,
            window=args.window,
            noise_model=GaussianNoiseModel(args.sigma),
            on_error=args.on_error,
            wal=wal,
        )
    with detector:
        streamed = 0
        for event in events:
            if event.t <= skip_until:
                continue
            detector.offer(event)
            streamed += 1
        detector.drain()
        scores = detector.evaluate(threshold=args.threshold)
        if args.wal_dir is not None:
            detector.snapshot()
        print(
            f"streamed {streamed} sighting(s); {len(detector.active_objects)} active "
            f"object(s) at stream time {detector.stream_time:.1f}; "
            f"dropped {detector.malformed_dropped} malformed / "
            f"{detector.duplicate_dropped} duplicate"
        )
        if not scores:
            print("no co-located pairs above threshold")
        for score in scores:
            print(f"  {score}")
    return 0


def _write_metrics(path: str) -> None:
    """Dump the default registry to ``path`` (JSON or Prometheus text)."""
    import json

    from .obs import get_registry

    registry = get_registry()
    if path.endswith(".json"):
        text = json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"
    else:
        text = registry.to_prometheus()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote metrics to {path}", file=sys.stderr)


def _check_obs_dump(path: str) -> list[str]:
    """Validate one observability dump, auto-detecting its format.

    Chrome trace-event JSON (a list, or ``{"traceEvents": [...]}``), a
    JSON metrics snapshot (counters/gauges/histograms sections), an SLO
    report (``{"slos": [...]}``) and Prometheus text exposition are all
    recognized; anything that parses as none of them is validated as
    Prometheus text (whose validator will say why it is not).
    """
    import json

    from .obs import (
        validate_chrome_trace,
        validate_metrics_snapshot,
        validate_prometheus_text,
        validate_slo_report,
    )

    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        doc = json.loads(text)
    except ValueError:
        return validate_prometheus_text(text)
    if isinstance(doc, list) or (isinstance(doc, dict) and "traceEvents" in doc):
        return validate_chrome_trace(doc)
    if isinstance(doc, dict) and "slos" in doc:
        return validate_slo_report(doc)
    if isinstance(doc, dict):
        return validate_metrics_snapshot(doc)
    return [f"unrecognized dump: JSON {type(doc).__name__} is no known format"]


def _obs_demo_workload():
    """A small instrumented run so every metric family has samples.

    Returns the measure: cache collectors are registered weakly, so the
    caller must keep it alive until after the snapshot is taken.
    """
    from .serving import Budget, DeadlineScorer

    dataset = _load_dataset("taxi", 8, seed=0)
    trajectories = dataset.trajectories
    measure = STS(
        grid_covering(trajectories, dataset.cell_size, dataset.margin),
        noise_model=GaussianNoiseModel(dataset.location_error),
    )
    measure.pairwise(trajectories[:4], queries=trajectories[4:6])
    scorer = DeadlineScorer(measure)
    for candidate in trajectories[1:4]:
        scorer.score(trajectories[0], candidate, budget=Budget(deadline_ms=5.0))
    return measure


def _run_obs(args) -> int:
    """The ``obs`` subcommand: validator, dump viewer, SLOs, logs, demo."""
    import json

    from .obs import get_registry, get_tracer, render_snapshot

    if args.check is not None:
        errors = _check_obs_dump(args.check)
        for error in errors:
            print(f"{args.check}: {error}", file=sys.stderr)
        print(f"{args.check}: {'FAILED' if errors else 'OK'}")
        return 1 if errors else 0

    if args.action == "logs":
        from .obs import merge_records, read_log_dir, render_records

        if not args.path:
            raise SystemExit("obs logs: pass the log directory (repro obs logs DIR)")
        records = merge_records(read_log_dir(args.path))
        if not records:
            print(f"{args.path}: no log records")
            return 0
        print(render_records(records))
        return 0

    if args.action == "slo":
        from .obs import SLOTracker, default_slos

        if args.input is not None:
            with open(args.input, encoding="utf-8") as handle:
                snapshot = json.load(handle)
        else:
            measure = _obs_demo_workload()  # noqa: F841 — keeps collectors alive
            registry = get_registry()
            if not getattr(registry, "enabled", False):
                print("observability is disabled (REPRO_OBS=off); nothing to show")
                return 0
            snapshot = registry.snapshot()
        report = SLOTracker.evaluate_snapshot(snapshot, slos=default_slos())
        print(json.dumps(report, indent=2, sort_keys=True))
        breaching = any(s["state"] in ("warn", "page") for s in report["slos"])
        return 1 if breaching else 0

    if args.input is not None:
        with open(args.input, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        print(render_snapshot(snapshot))
        return 0

    measure = _obs_demo_workload()  # noqa: F841 — keeps collectors alive
    registry = get_registry()
    if not getattr(registry, "enabled", False):
        print("observability is disabled (REPRO_OBS=off); nothing to show")
        return 0
    if args.format == "prom":
        print(registry.to_prometheus(), end="")
    elif args.format == "flame":
        print(get_tracer().flamegraph())
    elif args.format == "chrome":
        print(json.dumps(get_tracer().to_chrome_trace()))
    else:
        print(render_snapshot(registry.snapshot()))
        print()
        print("Span flamegraph:")
        print(get_tracer().flamegraph())
    return 0


def _run_verify(args) -> int:
    """The ``verify`` subcommand: differential path × relation matrix."""
    from .verify import PATHS, RELATIONS, run_verification

    if args.list_checks:
        print("paths:")
        for name, spec in PATHS.items():
            tol = "bitwise" if spec.tolerance is None else f"atol {spec.tolerance:g}"
            print(f"  {name:18s} [{tol}] {spec.description}")
        print("relations:")
        for name, rel in RELATIONS.items():
            print(f"  {name:18s} [{rel.equation}] {rel.description}")
        return 0

    try:
        report = run_verification(paths=args.paths, relations=args.relations)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.report_out:
        payload = (report.to_json() if args.report_out.endswith(".json")
                   else report.to_markdown())
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote report to {args.report_out}", file=sys.stderr)
    print(report.to_markdown())
    return 0 if report.passed else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    Structured input errors (:class:`~repro.errors.ReproError` — malformed
    records, degenerate trajectories, checkpoint mismatches) exit with a
    one-line message instead of a traceback; see ``--on-error`` for the
    skip/repair policies.
    """
    exporter = None
    try:
        args = build_parser().parse_args(argv)
        if getattr(args, "serve_metrics", None):
            from .obs import MetricsExporter, SLOTracker, default_slos, get_registry

            exporter = MetricsExporter.from_spec(
                args.serve_metrics,
                slo_tracker=SLOTracker(registry=get_registry(), slos=default_slos()),
            ).start()
            print(f"serving metrics at {exporter.url}", file=sys.stderr)
        code = _dispatch(args)
        if getattr(args, "metrics_out", None):
            _write_metrics(args.metrics_out)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if exporter is not None:
            exporter.stop()


def _dispatch(args: argparse.Namespace) -> int:

    if args.command == "obs":
        return _run_obs(args)

    if args.command == "verify":
        return _run_verify(args)

    if args.command == "list-measures":
        for name in available_measures():
            print(name)
        return 0

    if args.command == "link":
        return _run_link(args)

    if args.command == "events":
        return _run_events(args)

    if args.command == "groups":
        return _run_groups(args)

    if args.command == "stream":
        return _run_stream(args)

    dataset = _load_dataset(args.dataset, args.size, args.seed)

    if args.command == "generate":
        rows = save_trajectories_csv(dataset.trajectories, args.out)
        print(f"wrote {len(dataset.trajectories)} trajectories ({rows} rows) to {args.out}")
        return 0

    if args.command == "matching":
        d1, d2 = build_matching_pair(dataset.trajectories)
        corpus = d1 + d2
        grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
        measures = default_measures(
            grid, corpus, dataset.location_error, include=args.methods
        )
        print(f"matching task on {dataset.name} (n={len(d1)} queries)")
        _apply_parallel_flags(args)
        for measure in measures.values():
            print(f"  {evaluate_matching(measure, d1, d2, n_jobs=args.n_jobs)}")
        return 0

    if args.command == "experiment":
        result = _EXPERIMENTS[args.figure](dataset)
        for metric in result.metrics:
            print(result.format_table(metric))
            print()
        return 0

    if args.command == "report":
        _apply_parallel_flags(args)
        report = run_all_experiments(
            dataset,
            seed=args.seed,
            only=args.only,
            n_jobs=args.n_jobs,
            checkpoint_dir=args.checkpoint_dir,
        )
        if report.resumed:
            print(
                f"resumed {len(report.resumed)} experiment(s) from checkpoint: "
                f"{', '.join(report.resumed)}",
                file=sys.stderr,
            )
        text = render_markdown(report)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote report to {args.out} ({report.total_runtime:.1f}s of experiments)")
        else:
            print(text)
        return 0

    raise SystemExit(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
