"""Terminal visualization: trajectories and probability fields as text.

The library runs in headless environments (and ships no plotting
dependency), so debugging aids render to plain text: trajectories drawn
over the grid, S-T probability distributions as shaded heatmaps, and
co-location profiles as bar strips.  Rows are printed north-up (larger y
first), matching how the maps would be plotted.
"""

from __future__ import annotations

import numpy as np

from .core.grid import Grid
from .core.stprob import TrajectorySTP
from .core.trajectory import Trajectory

__all__ = ["render_trajectories", "render_stp", "render_profile"]

#: Probability shading ramp, light to dark.
_RAMP = " .:-=+*#%@"
#: Labels assigned to trajectories in drawing order.
_LABELS = "abcdefghijklmnopqrstuvwxyz"


def _downscale(grid: Grid, max_cols: int) -> int:
    """How many grid cells one character covers per axis."""
    return max(1, int(np.ceil(grid.n_cols / max_cols)))


def render_trajectories(
    grid: Grid,
    trajectories: list[Trajectory],
    max_cols: int = 78,
) -> str:
    """Draw trajectories over the grid; each gets a letter, overlaps '+'.

    Observation cells are marked with the trajectory's letter (``a`` for
    the first, ``b`` for the second, ...); cells visited by more than one
    trajectory show ``+``.
    """
    if not trajectories:
        raise ValueError("nothing to render")
    scale = _downscale(grid, max_cols)
    rows = int(np.ceil(grid.n_rows / scale))
    cols = int(np.ceil(grid.n_cols / scale))
    canvas = np.full((rows, cols), " ", dtype="<U1")
    for k, traj in enumerate(trajectories):
        label = _LABELS[k % len(_LABELS)]
        cells = grid.cells_of(traj.xy)
        for cell in np.unique(cells):
            r, c = divmod(int(cell), grid.n_cols)
            r, c = r // scale, c // scale
            canvas[r, c] = "+" if canvas[r, c] not in (" ", label) else label
    lines = ["".join(row) for row in canvas[::-1]]  # north-up
    legend = "  ".join(
        f"{_LABELS[k % len(_LABELS)]}={t.object_id or f'traj-{k}'}"
        for k, t in enumerate(trajectories)
    )
    return "\n".join([*lines, legend])


def render_stp(stp: TrajectorySTP, t: float, max_cols: int = 78) -> str:
    """The S-T probability distribution at time ``t`` as a shaded heatmap.

    Shades are relative to the peak probability at that time; an all-blank
    map means ``t`` is outside the trajectory's span.
    """
    grid = stp.grid
    dense = stp.stp_dense(t).reshape(grid.n_rows, grid.n_cols)
    scale = _downscale(grid, max_cols)
    rows = int(np.ceil(grid.n_rows / scale))
    cols = int(np.ceil(grid.n_cols / scale))
    coarse = np.zeros((rows, cols))
    for r in range(rows):
        for c in range(cols):
            block = dense[r * scale : (r + 1) * scale, c * scale : (c + 1) * scale]
            coarse[r, c] = block.sum()
    peak = coarse.max()
    lines = []
    for row in coarse[::-1]:
        if peak <= 0:
            lines.append(" " * cols)
            continue
        indices = np.minimum((row / peak * (len(_RAMP) - 1)).astype(int), len(_RAMP) - 1)
        lines.append("".join(_RAMP[i] for i in indices))
    header = f"STP at t={t:g} (peak cell prob {peak:.3g})"
    return "\n".join([header, *lines])


def render_profile(times: np.ndarray, values: np.ndarray, width: int = 50) -> str:
    """A time series (e.g. a co-location profile) as horizontal bars."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError("times and values must have the same shape")
    if times.size == 0:
        return "(empty profile)"
    top = values.max()
    lines = []
    for t, v in zip(times, values):
        bar = "#" * int(round(v / top * width)) if top > 0 else ""
        lines.append(f"t={t:8.1f}  {v:6.4f} {bar}")
    return "\n".join(lines)
