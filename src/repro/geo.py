"""Geographic coordinate support: lon/lat ↔ local planar meters.

The whole library works in planar meters (grids, speeds, kernels are all
Euclidean); real-world data arrives as WGS-84 longitude/latitude.
:class:`LocalProjector` provides the equirectangular projection around a
reference point that city-scale trajectory work uses: errors stay well
under typical GPS noise for extents up to a few tens of kilometers, which
is exactly the regime the paper's corpora (one city, one mall) live in.
For continental extents use a proper cartographic library instead.
"""

from __future__ import annotations

import math

import numpy as np

from .core.trajectory import Trajectory, TrajectoryPoint

__all__ = ["LocalProjector", "haversine_distance", "trajectories_to_geojson"]

_EARTH_RADIUS_M = 6_371_000.0


def haversine_distance(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in meters between two WGS-84 points."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    return 2.0 * _EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


class LocalProjector:
    """Equirectangular projection around a fixed reference point.

    ``x`` grows east, ``y`` grows north, both in meters; the reference
    maps to the origin.  The projection and its inverse round-trip
    exactly (it is an affine map in lon/lat).

    Parameters
    ----------
    ref_lon, ref_lat:
        Projection center.  Use :meth:`centered_on` to derive it from the
        data.  ``|ref_lat|`` must be strictly below 90° (the longitude
        scale vanishes at the poles).
    """

    def __init__(self, ref_lon: float, ref_lat: float):
        if not -90.0 < ref_lat < 90.0:
            raise ValueError(f"ref_lat must be in (-90, 90), got {ref_lat}")
        self.ref_lon = float(ref_lon)
        self.ref_lat = float(ref_lat)
        self._x_scale = math.radians(1.0) * _EARTH_RADIUS_M * math.cos(math.radians(ref_lat))
        self._y_scale = math.radians(1.0) * _EARTH_RADIUS_M

    # ------------------------------------------------------------------
    @classmethod
    def centered_on(cls, lons, lats) -> "LocalProjector":
        """Projector centered on the centroid of the given coordinates."""
        lons = np.asarray(lons, dtype=float)
        lats = np.asarray(lats, dtype=float)
        if lons.size == 0 or lats.size == 0:
            raise ValueError("cannot center a projector on zero coordinates")
        return cls(float(lons.mean()), float(lats.mean()))

    # ------------------------------------------------------------------
    def to_xy(self, lon, lat):
        """Project lon/lat (scalars or arrays) to local ``(x, y)`` meters."""
        x = (np.asarray(lon, dtype=float) - self.ref_lon) * self._x_scale
        y = (np.asarray(lat, dtype=float) - self.ref_lat) * self._y_scale
        if np.ndim(lon) == 0:
            return float(x), float(y)
        return x, y

    def to_lonlat(self, x, y):
        """Inverse of :meth:`to_xy`."""
        lon = np.asarray(x, dtype=float) / self._x_scale + self.ref_lon
        lat = np.asarray(y, dtype=float) / self._y_scale + self.ref_lat
        if np.ndim(x) == 0:
            return float(lon), float(lat)
        return lon, lat

    # ------------------------------------------------------------------
    def trajectory_from_lonlat(self, lons, lats, ts, object_id=None) -> Trajectory:
        """Build a planar :class:`Trajectory` from geographic fixes."""
        lons = np.asarray(lons, dtype=float)
        lats = np.asarray(lats, dtype=float)
        ts = np.asarray(ts, dtype=float)
        if not (len(lons) == len(lats) == len(ts)):
            raise ValueError("lons, lats and ts must have equal length")
        xs, ys = self.to_xy(lons, lats)
        return Trajectory(
            [TrajectoryPoint(float(x), float(y), float(t)) for x, y, t in zip(xs, ys, ts)],
            object_id=object_id,
        )

    def trajectory_to_lonlat(self, trajectory: Trajectory):
        """``(lons, lats, ts)`` arrays for a planar trajectory."""
        lons, lats = self.to_lonlat(trajectory.xy[:, 0], trajectory.xy[:, 1])
        return lons, lats, trajectory.timestamps.copy()

    def __repr__(self) -> str:
        return f"LocalProjector(ref_lon={self.ref_lon}, ref_lat={self.ref_lat})"


def trajectories_to_geojson(
    projector: LocalProjector,
    trajectories,
    properties: dict | None = None,
) -> dict:
    """Trajectories as a GeoJSON ``FeatureCollection`` of ``LineString``s.

    Each trajectory becomes one feature with its ``object_id``, point
    count and time span in the properties (plus any entries of
    ``properties``, merged into every feature).  Timestamps ride along as
    a ``times`` property array — the convention GIS viewers with temporal
    support (e.g. kepler.gl) read.  Single-point trajectories become
    ``Point`` features.  Serialize with ``json.dump``.
    """
    features = []
    extra = dict(properties or {})
    for k, traj in enumerate(trajectories):
        if len(traj) == 0:
            continue
        lons, lats, ts = projector.trajectory_to_lonlat(traj)
        coords = [[float(lon), float(lat)] for lon, lat in zip(lons, lats)]
        geometry = (
            {"type": "Point", "coordinates": coords[0]}
            if len(coords) == 1
            else {"type": "LineString", "coordinates": coords}
        )
        features.append(
            {
                "type": "Feature",
                "geometry": geometry,
                "properties": {
                    **extra,
                    "object_id": traj.object_id or f"trajectory-{k}",
                    "n_points": len(traj),
                    "start_time": float(traj.start_time),
                    "end_time": float(traj.end_time),
                    "times": [float(t) for t in ts],
                },
            }
        )
    return {"type": "FeatureCollection", "features": features}
