"""Durable streaming: a write-ahead log for the online co-location path.

The batch pipeline got checkpoint-resume (:mod:`repro.checkpoint`); this
module gives the *streaming* path the same crash story.  Every mutating
command a :class:`~repro.streaming.StreamingColocationDetector` accepts —
an ``offer``, a direct ``ingest``, a ``drain`` — is journaled here
*before* it touches detector state, so a ``kill -9`` at any instant
loses nothing that was acknowledged:

* **Segmented, CRC-checked log.**  Records are length-prefixed binary
  frames with a CRC32 over the payload, appended to segment files named
  by their first log sequence number (LSN).  Segments rotate at a
  bounded record count and whenever a snapshot is taken.
* **Append-fsync with a batching knob.**  ``fsync_every=1`` (default)
  makes every acknowledged record durable before the detector applies
  it; larger values trade bounded staleness (at most ``fsync_every - 1``
  tail records) for amortized fsync cost.
* **Snapshots.**  Detector state (windows, pending queue, stream clock,
  admission counters, breaker states, last pair scores) is written with
  the atomic, directory-fsynced write-rename idiom from
  :mod:`repro.checkpoint`.  The newest ``keep_snapshots`` snapshots are
  retained; segments fully covered by the *oldest retained* snapshot are
  pruned, so disk usage tracks the active-window horizon instead of the
  stream's lifetime.
* **Deterministic replay.**  Recovery (:func:`load_wal`, driven by
  :meth:`StreamingColocationDetector.recover`) restores the newest valid
  snapshot and re-executes the journaled command tail in order.  The
  detector's command handlers are deterministic functions of prior
  state, so the recovered detector — windows, pending queue, shed and
  malformed counters — is bitwise-identical to an uncrashed run, and so
  are the :class:`~repro.streaming.PairScore` values it produces.
* **Torn-tail truncation vs. corruption.**  A torn frame at the *end*
  of the last segment is the expected signature of a crash mid-append:
  it is truncated away, counted in
  ``repro_wal_records_total{outcome="truncated"}``, and reported in the
  :class:`RecoveryReport`.  A bad frame anywhere *before* acknowledged
  records raises :class:`~repro.errors.WALCorruptionError` — replaying
  past it would silently drop data.

The on-disk layout of a WAL directory::

    wal-meta.json                  # config + fingerprint, written once
    wal-0000000000000000.log       # segment starting at LSN 0
    wal-0000000000000512.log       # ...
    snapshot-0000000000000512.json # state covering every LSN < 512

Frame format (little-endian)::

    +----------------+----------------+------------------------+
    | payload length | CRC32(payload) | payload                |
    | uint32         | uint32         | op byte + body         |
    +----------------+----------------+------------------------+

    op 0x01 OFFER  / 0x02 INGEST: <ddd> x, y, t  + utf-8 object id
    op 0x03 DRAIN:                <q>   limit (-1 = drain all)
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path as FilePath
from time import perf_counter

from .checkpoint import fingerprint_digest, fsync_directory, write_json_atomic
from .errors import WALCorruptionError, WALError, WALWriteError
from .obs import get_registry

__all__ = [
    "StreamingWAL",
    "RecoveryReport",
    "WALRecovery",
    "load_wal",
    "read_meta",
    "OP_OFFER",
    "OP_INGEST",
    "OP_DRAIN",
]

# Injection seams for fault tests (disk-full, failing fsync).  The chaos
# harness monkeypatches these module attributes instead of the global os
# functions so only the WAL feels the fault.
_os_write = os.write
_os_fsync = os.fsync

SEGMENT_MAGIC = b"RWALSEG1"
_HEADER = struct.Struct("<II")
_EVENT_BODY = struct.Struct("<ddd")
_DRAIN_BODY = struct.Struct("<q")

OP_OFFER = 0x01
OP_INGEST = 0x02
OP_DRAIN = 0x03

META_NAME = "wal-meta.json"
META_VERSION = 1
SNAPSHOT_VERSION = 1

_SEGMENT_FMT = "wal-{:016d}.log"
_SNAPSHOT_FMT = "snapshot-{:016d}.json"


def _encode_op(op: tuple) -> bytes:
    """Serialize one journal command to its binary payload."""
    kind = op[0]
    if kind == "offer" or kind == "ingest":
        _, oid, x, y, t = op
        code = OP_OFFER if kind == "offer" else OP_INGEST
        return bytes([code]) + _EVENT_BODY.pack(x, y, t) + oid.encode("utf-8")
    if kind == "drain":
        return bytes([OP_DRAIN]) + _DRAIN_BODY.pack(int(op[1]))
    raise ValueError(f"unknown WAL op {kind!r}")


def _decode_op(payload: bytes) -> tuple:
    """Inverse of :func:`_encode_op`; raises ``ValueError`` on bad framing."""
    if not payload:
        raise ValueError("empty WAL payload")
    code = payload[0]
    if code in (OP_OFFER, OP_INGEST):
        if len(payload) < 1 + _EVENT_BODY.size:
            raise ValueError("short event payload")
        x, y, t = _EVENT_BODY.unpack_from(payload, 1)
        oid = payload[1 + _EVENT_BODY.size :].decode("utf-8")
        return ("offer" if code == OP_OFFER else "ingest", oid, x, y, t)
    if code == OP_DRAIN:
        if len(payload) != 1 + _DRAIN_BODY.size:
            raise ValueError("bad drain payload length")
        return ("drain", _DRAIN_BODY.unpack_from(payload, 1)[0])
    raise ValueError(f"unknown WAL op code {code:#x}")


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _segment_path(directory: FilePath, start_lsn: int) -> FilePath:
    return directory / _SEGMENT_FMT.format(start_lsn)


def _list_segments(directory: FilePath) -> list[tuple[int, FilePath]]:
    """``(start_lsn, path)`` of every segment file, ascending."""
    found = []
    for path in directory.glob("wal-*.log"):
        try:
            found.append((int(path.stem.split("-", 1)[1]), path))
        except (IndexError, ValueError):
            raise WALCorruptionError(f"unrecognized segment filename {path.name}")
    return sorted(found)


def _list_snapshots(directory: FilePath) -> list[tuple[int, FilePath]]:
    found = []
    for path in directory.glob("snapshot-*.json"):
        try:
            found.append((int(path.stem.split("-", 1)[1]), path))
        except (IndexError, ValueError):
            continue  # not ours (e.g. an editor backup); never load it
    return sorted(found)


@dataclass
class RecoveryReport:
    """What :func:`load_wal` found and did, for logs and assertions."""

    snapshot_lsn: int = 0
    replayed: int = 0
    skipped: int = 0
    truncated_records: int = 0
    truncated_bytes: int = 0
    invalid_snapshots: int = 0
    segments_scanned: int = 0
    elapsed_s: float = 0.0

    def summary(self) -> str:
        """One-line human-readable account of the recovery, for logs."""
        parts = [
            f"snapshot@{self.snapshot_lsn}",
            f"replayed {self.replayed}",
            f"skipped {self.skipped}",
        ]
        if self.truncated_records:
            parts.append(
                f"truncated {self.truncated_records} torn record(s) "
                f"({self.truncated_bytes} B)"
            )
        if self.invalid_snapshots:
            parts.append(f"ignored {self.invalid_snapshots} invalid snapshot(s)")
        return ", ".join(parts)


@dataclass
class WALRecovery:
    """Everything recovery needs: config, state, the tail to replay."""

    config: dict
    state: dict | None
    ops: list[tuple]
    next_lsn: int
    report: RecoveryReport = field(default_factory=RecoveryReport)


def read_meta(directory: str | FilePath) -> dict:
    """The WAL directory's config record; raises :class:`WALError` if absent."""
    path = FilePath(directory) / META_NAME
    if not path.exists():
        raise WALError(
            f"{directory} holds no WAL metadata ({META_NAME}); "
            "nothing to recover from"
        )
    try:
        with open(path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise WALError(f"unreadable WAL metadata {path}: {exc}") from exc
    if "config" not in meta or "fingerprint" not in meta:
        raise WALError(f"WAL metadata {path} is missing required fields")
    return meta


def _read_segment(path: FilePath) -> tuple[list[tuple], int | None, int]:
    """Parse one segment.

    Returns ``(ops, bad_offset, file_size)`` where ``bad_offset`` is the
    byte offset of the first unreadable frame (``None`` when the segment
    is clean).  Unreadable covers: short/absent magic, a truncated
    header, a payload shorter than its declared length, a CRC mismatch,
    and an undecodable payload.
    """
    data = path.read_bytes()
    size = len(data)
    if size < len(SEGMENT_MAGIC) or data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        return [], 0, size
    ops: list[tuple] = []
    offset = len(SEGMENT_MAGIC)
    while offset < size:
        if offset + _HEADER.size > size:
            return ops, offset, size
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            return ops, offset, size
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return ops, offset, size
        try:
            ops.append(_decode_op(payload))
        except ValueError:
            return ops, offset, size
        offset = end
    return ops, None, size


def load_wal(directory: str | FilePath, registry=None) -> WALRecovery:
    """Read a WAL directory back: newest valid snapshot + command tail.

    Torn tail frames in the *last* segment are truncated in place (the
    expected crash signature, counted in the metrics and the report);
    damage anywhere else raises
    :class:`~repro.errors.WALCorruptionError`.
    """
    t0 = perf_counter()
    directory = FilePath(directory)
    registry = registry if registry is not None else get_registry()
    records = registry.counter(
        "repro_wal_records_total", "WAL records by lifecycle outcome"
    )
    report = RecoveryReport()
    meta = read_meta(directory)
    expected_fp = meta["fingerprint"]

    # Newest snapshot whose JSON parses and whose fingerprint matches.
    state: dict | None = None
    snap_lsn = 0
    for lsn, path in reversed(_list_snapshots(directory)):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            report.invalid_snapshots += 1
            continue
        if data.get("fingerprint") != expected_fp or "state" not in data:
            report.invalid_snapshots += 1
            continue
        state, snap_lsn = data["state"], int(data.get("lsn", lsn))
        break
    report.snapshot_lsn = snap_lsn

    segments = _list_segments(directory)
    report.segments_scanned = len(segments)
    ops: list[tuple] = []
    next_lsn = snap_lsn
    expected_start: int | None = None
    for index, (start_lsn, path) in enumerate(segments):
        last = index == len(segments) - 1
        if expected_start is not None and start_lsn != expected_start:
            raise WALCorruptionError(
                f"WAL segment gap in {directory}: expected a segment starting "
                f"at LSN {expected_start}, found {path.name}"
            )
        seg_ops, bad_offset, size = _read_segment(path)
        if bad_offset is not None:
            if not last:
                raise WALCorruptionError(
                    f"corrupt record at byte {bad_offset} of non-final WAL "
                    f"segment {path.name}; acknowledged records after it "
                    "would be lost — refusing to replay past the damage"
                )
            # Torn tail from a crash mid-append: truncate and carry on.
            report.truncated_records += 1  # at least one; framing is gone past it
            report.truncated_bytes = size - bad_offset
            records.inc(outcome="truncated")
            if bad_offset == 0:
                # The segment header itself is torn (crash during segment
                # creation); the file carries nothing usable.
                path.unlink()
            else:
                with open(path, "r+b") as handle:
                    handle.truncate(bad_offset)
                    handle.flush()
                    os.fsync(handle.fileno())
            fsync_directory(directory)
        end_lsn = start_lsn + len(seg_ops)
        expected_start = end_lsn
        for k, op in enumerate(seg_ops):
            lsn = start_lsn + k
            if lsn < snap_lsn:
                report.skipped += 1
            else:
                ops.append(op)
        next_lsn = max(next_lsn, end_lsn)

    if segments and segments[0][0] > snap_lsn:
        raise WALCorruptionError(
            f"WAL in {directory} is missing records [{snap_lsn}, "
            f"{segments[0][0]}): the oldest segment starts after the newest "
            "usable snapshot"
        )
    if not segments and state is None and snap_lsn == 0:
        # A bound-but-empty WAL: legal, recovers to a fresh detector.
        pass

    report.replayed = len(ops)
    records.inc(len(ops), outcome="replayed")
    report.elapsed_s = perf_counter() - t0
    return WALRecovery(
        config=meta["config"], state=state, ops=ops, next_lsn=next_lsn, report=report
    )


class StreamingWAL:
    """Append side of the durable streaming layer.

    Parameters
    ----------
    directory:
        The WAL directory (created if missing).  One directory belongs
        to one detector configuration; the config fingerprint is pinned
        in ``wal-meta.json`` on first bind and validated ever after.
    fsync_every:
        Records per fsync.  ``1`` (default) fsyncs inside every append —
        an acknowledged record is durable before the detector applies
        it.  Larger values buffer frames and flush per batch: at most
        ``fsync_every - 1`` acknowledged tail records can be lost to a
        crash (bounded staleness), never a middle one.
    segment_max_records:
        Rotation threshold; segments also rotate at every snapshot.
    snapshot_every:
        Appends between automatic snapshots (taken by the detector via
        :meth:`should_snapshot`); ``None`` disables automatic snapshots.
    keep_snapshots:
        Snapshots retained (>= 1).  Segments fully covered by the oldest
        retained snapshot are pruned; keeping two means a torn newest
        snapshot still leaves a valid older one *with* its replay tail.
    registry:
        Metrics registry override (defaults to the process registry).
    """

    def __init__(
        self,
        directory: str | FilePath,
        *,
        fsync_every: int = 1,
        segment_max_records: int = 2048,
        snapshot_every: int | None = 512,
        keep_snapshots: int = 2,
        registry=None,
    ):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        if segment_max_records < 1:
            raise ValueError(
                f"segment_max_records must be >= 1, got {segment_max_records}"
            )
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if keep_snapshots < 1:
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.directory = FilePath(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_every = int(fsync_every)
        self.segment_max_records = int(segment_max_records)
        self.snapshot_every = None if snapshot_every is None else int(snapshot_every)
        self.keep_snapshots = int(keep_snapshots)
        self.fingerprint: str | None = None
        self._fd: int | None = None
        self._buffer = bytearray()
        self._buffered_records = 0
        self._next_lsn = 0
        self._segment_start = 0
        self._segment_records = 0
        self._since_snapshot = 0
        self._positioned = False
        self._bound = False
        reg = registry if registry is not None else get_registry()
        self._registry = reg
        records = reg.counter(
            "repro_wal_records_total", "WAL records by lifecycle outcome"
        )
        self._m_appended = records.child(outcome="appended")
        self._h_fsync = reg.histogram(
            "repro_wal_fsync_seconds", "Wall seconds per WAL flush (write+fsync)"
        ).child()
        segments = reg.counter(
            "repro_wal_segments_total", "WAL segment lifecycle events"
        )
        self._m_rotated = segments.child(event="rotated")
        self._m_pruned = segments.child(event="pruned")
        self._m_snapshots = reg.counter(
            "repro_wal_snapshots_total", "Detector state snapshots written"
        ).child()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def next_lsn(self) -> int:
        """LSN the next appended record will get."""
        return self._next_lsn

    def bind(self, config: dict) -> None:
        """Pin this directory to one detector configuration.

        Called by :meth:`StreamingColocationDetector.attach_wal`.  The
        first bind writes ``wal-meta.json``; later binds validate the
        fingerprint (:class:`~repro.errors.WALError` on mismatch).  A
        *fresh* detector may only bind an empty journal — a directory
        with history must go through
        :meth:`StreamingColocationDetector.recover`, otherwise the
        journal and the in-memory state would silently diverge.
        """
        fingerprint = fingerprint_digest(config, length=16)
        meta_path = self.directory / META_NAME
        if meta_path.exists():
            meta = read_meta(self.directory)
            if meta["fingerprint"] != fingerprint:
                raise WALError(
                    f"WAL directory {self.directory} belongs to a different "
                    f"detector configuration: found fingerprint "
                    f"{meta['fingerprint']}, this detector is {fingerprint}"
                )
        else:
            write_json_atomic(
                meta_path,
                {
                    "version": META_VERSION,
                    "fingerprint": fingerprint,
                    "config": config,
                },
            )
        if not self._positioned:
            if _list_segments(self.directory) or _list_snapshots(self.directory):
                raise WALError(
                    f"WAL directory {self.directory} already holds journaled "
                    "history; attach it via StreamingColocationDetector."
                    "recover() instead of a fresh detector"
                )
            self._positioned = True
        self.fingerprint = fingerprint
        self._bound = True
        if self._fd is None:
            self._open_segment(self._next_lsn)

    def resume_at(self, next_lsn: int) -> None:
        """Position the append side after recovery (internal API)."""
        if self._bound:
            raise WALError("resume_at must be called before bind()")
        self._next_lsn = int(next_lsn)
        self._positioned = True

    def close(self) -> None:
        """Flush buffered records and release the segment file."""
        if self._fd is not None:
            try:
                self.flush()
            finally:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "StreamingWAL":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def append(self, op: tuple) -> int:
        """Journal one command; returns its LSN.

        The frame is written (and, per ``fsync_every``, fsynced) before
        the caller mutates detector state.  On any OS-level failure the
        partial frame is truncated away and
        :class:`~repro.errors.WALWriteError` is raised — the caller must
        *not* apply the command.
        """
        if not self._bound:
            raise WALError("WAL is not bound to a detector (call bind() first)")
        if self._segment_records >= self.segment_max_records:
            self._rotate()
        frame = _frame(_encode_op(op))
        self._buffer += frame
        self._buffered_records += 1
        try:
            if self._buffered_records >= self.fsync_every:
                self._flush_buffer()
        except WALWriteError:
            # The failing command was never applied; drop its frame so a
            # later flush cannot journal an event that has no effect.
            del self._buffer[len(self._buffer) - len(frame) :]
            self._buffered_records -= 1
            raise
        lsn = self._next_lsn
        self._next_lsn += 1
        self._segment_records += 1
        self._since_snapshot += 1
        self._m_appended.inc()
        return lsn

    def flush(self) -> None:
        """Force buffered frames to disk (write + fsync)."""
        self._flush_buffer()

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        if self._fd is None:
            raise WALWriteError(f"WAL segment in {self.directory} is closed")
        t0 = perf_counter()
        written = 0
        view = memoryview(bytes(self._buffer))
        try:
            while written < len(view):
                written += _os_write(self._fd, view[written:])
            _os_fsync(self._fd)
        except OSError as exc:
            # Roll the file back to its last durable prefix so the torn
            # frame cannot sit *before* future appends (which would turn
            # an innocent torn tail into mid-log corruption).
            try:
                os.ftruncate(self._fd, self._synced_size)
            except OSError:
                pass
            raise WALWriteError(
                f"WAL append to {self.directory} failed: {exc}"
            ) from exc
        self._synced_size += len(view)
        self._buffer.clear()
        self._buffered_records = 0
        self._h_fsync.observe(perf_counter() - t0)

    def _open_segment(self, start_lsn: int) -> None:
        path = _segment_path(self.directory, start_lsn)
        fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            # A crash right after rotation (or a recovery resuming at a
            # rotation boundary) can leave this segment already created,
            # magic written: appending the magic again would corrupt the
            # framing, so only stamp files that need it.
            size = os.fstat(fd).st_size
            if 0 < size < len(SEGMENT_MAGIC):
                os.ftruncate(fd, 0)  # torn magic from a crash mid-creation
                size = 0
            if size == 0:
                magic = memoryview(SEGMENT_MAGIC)
                written = 0
                while written < len(magic):
                    written += _os_write(fd, magic[written:])
                _os_fsync(fd)
                fsync_directory(self.directory)
                size = len(SEGMENT_MAGIC)
        except OSError as exc:
            os.close(fd)
            raise WALWriteError(
                f"cannot start WAL segment {path.name}: {exc}"
            ) from exc
        self._fd = fd
        self._segment_start = start_lsn
        self._segment_records = 0
        self._synced_size = size

    def _rotate(self) -> None:
        self.flush()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self._open_segment(self._next_lsn)
        self._m_rotated.inc()

    # ------------------------------------------------------------------
    # Snapshots & retention
    # ------------------------------------------------------------------
    def should_snapshot(self) -> bool:
        """Whether enough appends piled up for an automatic snapshot."""
        return (
            self.snapshot_every is not None
            and self._since_snapshot >= self.snapshot_every
        )

    def write_snapshot(self, state: dict) -> FilePath:
        """Persist detector ``state`` as covering every LSN < ``next_lsn``.

        Buffered records are flushed first (the snapshot includes their
        effects), the snapshot file is written atomically, the active
        segment rotates so retention can prune it later, and snapshots
        beyond ``keep_snapshots`` (plus the segments they cover) are
        deleted.
        """
        if not self._bound:
            raise WALError("WAL is not bound to a detector (call bind() first)")
        self.flush()
        path = self.directory / _SNAPSHOT_FMT.format(self._next_lsn)
        write_json_atomic(
            path,
            {
                "version": SNAPSHOT_VERSION,
                "fingerprint": self.fingerprint,
                "lsn": self._next_lsn,
                "state": state,
            },
        )
        self._since_snapshot = 0
        self._m_snapshots.inc()
        if self._segment_records:
            self._rotate()
        self._retire()
        return path

    def _retire(self) -> None:
        """Drop snapshots beyond the retention count and covered segments."""
        snapshots = _list_snapshots(self.directory)
        for _, path in snapshots[: -self.keep_snapshots]:
            path.unlink(missing_ok=True)
        snapshots = snapshots[-self.keep_snapshots :]
        if not snapshots:
            return
        keep_lsn = snapshots[0][0]
        segments = _list_segments(self.directory)
        pruned = False
        # Segment i covers [start_i, start_{i+1}); prunable when that
        # whole range is below the oldest retained snapshot.  The last
        # (active) segment always stays.
        for (start, path), (next_start, _) in zip(segments, segments[1:]):
            if next_start <= keep_lsn:
                path.unlink(missing_ok=True)
                self._m_pruned.inc()
                pruned = True
        if pruned:
            fsync_directory(self.directory)
