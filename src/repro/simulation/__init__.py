"""Mobility simulation substrate: road network, mall floor plan, sampling."""

from .floorplan import FloorPlan
from .pedestrian import simulate_companions, simulate_pedestrian_path, simulate_visitors
from .roadnet import RoadNetwork
from .sampling import (
    alternate_split,
    distort,
    downsample,
    periodic_times,
    poisson_times,
    sample_path,
)
from .vehicle import simulate_taxi_fleet, simulate_taxi_path

__all__ = [
    "RoadNetwork",
    "simulate_taxi_path",
    "simulate_taxi_fleet",
    "FloorPlan",
    "simulate_pedestrian_path",
    "simulate_visitors",
    "simulate_companions",
    "periodic_times",
    "poisson_times",
    "sample_path",
    "alternate_split",
    "downsample",
    "distort",
]
