"""Pedestrian movement simulation inside a mall floor plan.

A visitor enters the mall, visits a few stores (walking the corridor graph
at a personal speed, dwelling inside each store), and leaves.  Personal
walking speeds differ across visitors — the heterogeneity observed by
Chandra & Bharti (cited as [26] in the paper) that motivates STS's
personalized speed model.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Path
from .floorplan import FloorPlan

__all__ = ["simulate_pedestrian_path", "simulate_visitors", "simulate_companions"]


def _walk_polyline(
    vertices: list[np.ndarray],
    times: list[float],
    polyline: np.ndarray,
    speed: float,
    rng: np.random.Generator,
    speed_cv: float,
) -> None:
    """Append a walk along ``polyline`` to the vertex/time lists, in place."""
    for k in range(len(polyline) - 1):
        seg = polyline[k + 1] - polyline[k]
        length = float(np.hypot(seg[0], seg[1]))
        if length == 0.0:
            continue
        step_speed = float(np.clip(rng.normal(speed, speed_cv * speed), 0.3, 3.0))
        vertices.append(np.asarray(polyline[k + 1], dtype=float))
        times.append(times[-1] + length / step_speed)


def simulate_pedestrian_path(
    plan: FloorPlan,
    rng: np.random.Generator,
    start_time: float = 0.0,
    n_stops: int = 4,
    walking_speed_mean: float = 1.25,
    walking_speed_std: float = 0.35,
    speed_cv: float = 0.15,
    dwell_mean: float = 120.0,
    object_id: str | None = None,
) -> Path:
    """One mall visit as a continuous path.

    Parameters
    ----------
    n_stops:
        Number of stores visited between entering and leaving.
    walking_speed_mean, walking_speed_std:
        The visitor's personal speed (m/s) drawn once per visit; the mean
        of 1.25 m/s matches observed pedestrian speed distributions.
    dwell_mean:
        Mean dwell time inside each store (exponential), seconds.
    """
    if n_stops < 1:
        raise ValueError(f"n_stops must be >= 1, got {n_stops}")
    speed = float(np.clip(rng.normal(walking_speed_mean, walking_speed_std), 0.5, 2.5))

    entrance = plan.random_entrance(rng)
    stops = [plan.random_store(rng) for _ in range(n_stops)]
    waypoints = [entrance, *stops, plan.random_entrance(rng)]

    vertices: list[np.ndarray] = [plan.position(entrance).copy()]
    times: list[float] = [start_time]
    for a, b in zip(waypoints[:-1], waypoints[1:]):
        polyline = plan.route(a, b)
        _walk_polyline(vertices, times, polyline, speed, rng, speed_cv)
        # Dwell at the destination (store browsing): position holds still.
        dwell = float(rng.exponential(dwell_mean))
        vertices.append(vertices[-1].copy())
        times.append(times[-1] + dwell)
    return Path(np.array(vertices), np.array(times), object_id=object_id)


def simulate_visitors(
    plan: FloorPlan,
    n_visitors: int,
    rng: np.random.Generator,
    time_window: float = 7200.0,
    **visit_kwargs,
) -> list[Path]:
    """``n_visitors`` independent mall visits spread over ``time_window``."""
    if n_visitors < 1:
        raise ValueError(f"n_visitors must be >= 1, got {n_visitors}")
    paths = []
    for i in range(n_visitors):
        start = float(rng.uniform(0.0, time_window))
        paths.append(
            simulate_pedestrian_path(
                plan, rng, start_time=start, object_id=f"visitor-{i:04d}", **visit_kwargs
            )
        )
    return paths


def simulate_companions(
    plan: FloorPlan,
    rng: np.random.Generator,
    start_time: float = 0.0,
    lateral_offset: float = 1.0,
    **visit_kwargs,
) -> tuple[Path, Path]:
    """Two people walking the mall *together* (for companion detection).

    The second path is the first with a small constant lateral offset —
    walking side by side — so the two ground-truth paths co-locate at every
    instant.  Their *trajectories* will still look different after sporadic
    sampling and noise, which is exactly the detection problem STS targets.
    """
    leader = simulate_pedestrian_path(plan, rng, start_time=start_time, **visit_kwargs)
    angle = rng.uniform(0.0, 2.0 * np.pi)
    offset = lateral_offset * np.array([np.cos(angle), np.sin(angle)])
    follower = Path(
        leader.xy + offset,
        leader.t.copy(),
        object_id=(leader.object_id or "companion") + "-b",
    )
    return leader, follower
