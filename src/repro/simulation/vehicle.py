"""Vehicle (taxi) movement simulation over a road network.

Produces continuous ground-truth :class:`~repro.core.trajectory.Path`
objects: a taxi picks an origin-destination pair, follows the shortest
street route, and moves with a personal cruising speed modulated by
per-segment variation (traffic, turns).  The sampling module then turns
paths into trajectories — for the Porto-like setting, one report every
15 seconds (Section VI-A of the paper).
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Path
from .roadnet import RoadNetwork

__all__ = ["simulate_taxi_path", "simulate_taxi_fleet"]


def _densify(polyline: np.ndarray, max_vertex_spacing: float) -> np.ndarray:
    """Insert vertices so consecutive ones are at most ``max_vertex_spacing`` apart."""
    out = [polyline[0]]
    for k in range(len(polyline) - 1):
        seg = polyline[k + 1] - polyline[k]
        length = float(np.hypot(seg[0], seg[1]))
        n_sub = max(1, int(np.ceil(length / max_vertex_spacing)))
        for s in range(1, n_sub + 1):
            out.append(polyline[k] + (s / n_sub) * seg)
    return np.array(out)


def _pick_od(
    network: RoadNetwork,
    rng: np.random.Generator,
    min_distance: float,
    hubs: list[int] | None,
    hub_bias: float,
) -> tuple[int, int]:
    """O-D pair, optionally biased so one endpoint is a demand hub."""
    if not hubs or hub_bias <= 0.0:
        return network.random_od_pair(rng, min_distance=min_distance)
    for _ in range(200):
        if rng.random() < hub_bias:
            a = hubs[int(rng.integers(len(hubs)))]
        else:
            a = network.random_node(rng)
        b = network.random_node(rng)
        if rng.random() < 0.5:
            a, b = b, a
        if a != b:
            d = float(np.hypot(*(network.position(a) - network.position(b))))
            if d >= min_distance:
                return a, b
    return network.random_od_pair(rng, min_distance=min_distance)


def simulate_taxi_path(
    network: RoadNetwork,
    rng: np.random.Generator,
    start_time: float = 0.0,
    cruise_speed_mean: float = 9.0,
    cruise_speed_std: float = 3.5,
    segment_speed_cv: float = 0.25,
    min_trip_distance: float = 1000.0,
    hubs: list[int] | None = None,
    hub_bias: float = 0.0,
    object_id: str | None = None,
) -> Path:
    """One taxi trip as a continuous path.

    Parameters
    ----------
    cruise_speed_mean, cruise_speed_std:
        The taxi's personal cruising speed (m/s) is drawn once per trip
        from a truncated normal — the *personalized* speed heterogeneity
        STS exploits.  9 m/s ≈ 32 km/h, typical urban taxi pace.
    segment_speed_cv:
        Coefficient of variation of per-segment speed around the personal
        cruise speed (traffic lights, congestion, turns).
    min_trip_distance:
        Minimum straight-line O-D separation in meters.
    hubs, hub_bias:
        Demand concentration: with probability ``hub_bias`` one trip
        endpoint is drawn from ``hubs`` (stations, downtown, the airport),
        so many trips share road corridors — the confusability real taxi
        data exhibits.
    """
    origin, destination = _pick_od(network, rng, min_trip_distance, hubs, hub_bias)
    polyline = network.route(origin, destination)
    # Fine vertices so Path.locate() is accurate between intersections.
    polyline = _densify(polyline, max_vertex_spacing=25.0)

    cruise = float(np.clip(rng.normal(cruise_speed_mean, cruise_speed_std), 2.0, 25.0))
    times = [start_time]
    for k in range(len(polyline) - 1):
        seg = polyline[k + 1] - polyline[k]
        length = float(np.hypot(seg[0], seg[1]))
        speed = float(np.clip(rng.normal(cruise, segment_speed_cv * cruise), 0.5, 30.0))
        times.append(times[-1] + length / speed)
    return Path(polyline, np.array(times), object_id=object_id)


def simulate_taxi_fleet(
    network: RoadNetwork,
    n_trips: int,
    rng: np.random.Generator,
    time_window: float = 3600.0,
    n_hubs: int = 3,
    hub_bias: float = 0.6,
    **trip_kwargs,
) -> list[Path]:
    """``n_trips`` independent trips with start times spread over ``time_window``.

    Spreading starts over a window keeps most trajectory pairs only
    partially overlapping in time — the realistic regime the temporal
    dimension of STS has to disambiguate.  Demand concentrates on
    ``n_hubs`` random hub intersections (``hub_bias`` of trips start or
    end at one), so routes share corridors as real urban taxi demand does;
    set ``n_hubs=0`` for uniformly spread demand.
    """
    if n_trips < 1:
        raise ValueError(f"n_trips must be >= 1, got {n_trips}")
    hubs = [network.random_node(rng) for _ in range(n_hubs)] if n_hubs > 0 else None
    paths = []
    for i in range(n_trips):
        start = float(rng.uniform(0.0, time_window))
        paths.append(
            simulate_taxi_path(
                network,
                rng,
                start_time=start,
                hubs=hubs,
                hub_bias=hub_bias,
                object_id=f"taxi-{i:04d}",
                **trip_kwargs,
            )
        )
    return paths
