"""Sampling, splitting and distortion treatments (Section VI of the paper).

This module turns continuous :class:`~repro.core.trajectory.Path` objects
into discrete trajectories and applies the experimental treatments the
paper evaluates:

* **periodic / Poisson sampling** — a taxi terminal reporting every 15 s
  vs. WiFi sightings with random (exponential) gaps;
* **alternate split** (Fig. 3) — sub-trajectories of alternating points,
  manufacturing two "sensing systems" that observed the same object;
* **rate-ρ downsampling** — keep a random fraction of points (the low /
  heterogeneous sampling-rate treatments of Figs. 4–7);
* **Gaussian distortion** (Eq. 14) — location noise of radius β meters
  (Figs. 8–9).

All randomized treatments take an explicit :class:`numpy.random.Generator`
for reproducibility.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Path, Trajectory, TrajectoryPoint

__all__ = [
    "periodic_times",
    "poisson_times",
    "sample_path",
    "alternate_split",
    "downsample",
    "distort",
]


def periodic_times(start: float, end: float, interval: float) -> np.ndarray:
    """Sampling times every ``interval`` seconds in ``[start, end]``."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if end < start:
        raise ValueError(f"end ({end}) must be >= start ({start})")
    return np.arange(start, end + 1e-9, interval)


def poisson_times(
    start: float, end: float, mean_interval: float, rng: np.random.Generator
) -> np.ndarray:
    """Sporadic sampling times with exponential gaps (Poisson process).

    Always includes a sample at ``start``; models asynchronous, randomly
    timed sightings (WiFi probes, CDR events).
    """
    if mean_interval <= 0:
        raise ValueError(f"mean_interval must be positive, got {mean_interval}")
    if end < start:
        raise ValueError(f"end ({end}) must be >= start ({start})")
    times = [start]
    t = start
    while True:
        t += float(rng.exponential(mean_interval))
        if t > end:
            break
        times.append(t)
    return np.array(times)


def sample_path(
    path: Path,
    times: np.ndarray,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
    object_id: str | None = None,
) -> Trajectory:
    """Observe ``path`` at ``times``, with optional Gaussian location noise.

    Times outside the path's span are dropped (a sensor cannot observe an
    object before it appears or after it leaves).
    """
    times = np.asarray(times, dtype=float)
    inside = times[(times >= path.start_time) & (times <= path.end_time)]
    traj = path.sample(inside, object_id=object_id)
    if noise_std > 0.0:
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        traj = distort(traj, noise_std, rng)
    return traj


def alternate_split(trajectory: Trajectory) -> tuple[Trajectory, Trajectory]:
    """Fig. 3: split into odd-indexed and even-indexed sub-trajectories.

    The two halves simulate two different sensing systems that each caught
    every other sighting of the same object; matching them back up is the
    ground-truth task of Section VI-C.
    """
    if len(trajectory) < 2:
        raise ValueError("alternate split needs at least 2 points")
    first = trajectory.subsample(range(0, len(trajectory), 2))
    second = trajectory.subsample(range(1, len(trajectory), 2))
    return first, second


def downsample(
    trajectory: Trajectory, rate: float, rng: np.random.Generator, min_points: int = 2
) -> Trajectory:
    """Keep a random fraction ``rate`` of the points (order preserved).

    The number kept is ``max(min_points, round(rate * n))``, clipped to
    ``n``; the paper's sampling-rate treatments use rates 0.1–0.9.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    n = len(trajectory)
    if n == 0:
        raise ValueError("cannot downsample an empty trajectory")
    keep = min(n, max(min_points, int(round(rate * n))))
    if keep >= n:
        return trajectory
    indices = np.sort(rng.choice(n, size=keep, replace=False))
    return trajectory.subsample(indices.tolist())


def distort(trajectory: Trajectory, beta: float, rng: np.random.Generator) -> Trajectory:
    """Eq. 14: add Gaussian noise of radius ``beta`` meters to every location.

    ``x_i += β·N(0,1)``, ``y_i += β·N(0,1)`` — the location-noise treatment
    of Figs. 8–9 (β up to 8 m indoors, up to 100 m outdoors).
    """
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    if beta == 0.0:
        return trajectory
    offsets = rng.standard_normal((len(trajectory), 2)) * beta
    points = [
        TrajectoryPoint(p.x + float(dx), p.y + float(dy), p.t)
        for p, (dx, dy) in zip(trajectory, offsets)
    ]
    return Trajectory(points, object_id=trajectory.object_id)
