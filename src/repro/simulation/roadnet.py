"""Synthetic city road network (substrate for the taxi dataset).

The paper's outdoor evaluation uses the public Porto taxi dataset; this
environment has no network access, so :mod:`repro.simulation` provides a
road-network substrate instead (see DESIGN.md §3 for the substitution
argument).  :class:`RoadNetwork` is a planar graph with jittered
Manhattan-style blocks, random street removals (keeping the network
connected) and a few diagonal avenues, giving taxi routes the mix of long
straight runs and irregular turns that real street geometry produces.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

__all__ = ["RoadNetwork"]


class RoadNetwork:
    """A planar street graph with node coordinates in meters.

    Nodes are integers, each carrying a ``pos`` attribute ``(x, y)``; edge
    weights are Euclidean lengths.  Build one with :meth:`manhattan`.
    """

    def __init__(self, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise ValueError("road network must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("road network must be connected")
        self.graph = graph
        self._positions = {n: np.asarray(d["pos"], dtype=float) for n, d in graph.nodes(data=True)}

    # ------------------------------------------------------------------
    @classmethod
    def manhattan(
        cls,
        n_rows: int = 12,
        n_cols: int = 12,
        block_size: float = 150.0,
        rng: np.random.Generator | None = None,
        jitter: float = 0.15,
        removal_fraction: float = 0.12,
        diagonal_fraction: float = 0.05,
    ) -> "RoadNetwork":
        """Jittered grid-of-blocks street network.

        Parameters
        ----------
        n_rows, n_cols:
            Intersection counts; the city spans roughly
            ``n_cols × block_size`` by ``n_rows × block_size`` meters.
        block_size:
            Nominal block edge in meters (Porto blocks are ~100–300 m).
        jitter:
            Positional noise of intersections, as a fraction of the block.
        removal_fraction:
            Fraction of streets randomly removed (dead ends, rivers, parks)
            — removals that would disconnect the network are skipped.
        diagonal_fraction:
            Fraction of blocks gaining a diagonal shortcut (avenues).
        """
        if n_rows < 2 or n_cols < 2:
            raise ValueError("need at least a 2x2 intersection grid")
        rng = rng if rng is not None else np.random.default_rng()

        graph = nx.Graph()
        index = lambda r, c: r * n_cols + c  # noqa: E731 - tiny local helper
        for r in range(n_rows):
            for c in range(n_cols):
                x = c * block_size + rng.normal(0.0, jitter * block_size)
                y = r * block_size + rng.normal(0.0, jitter * block_size)
                graph.add_node(index(r, c), pos=(float(x), float(y)))
        for r in range(n_rows):
            for c in range(n_cols):
                if c + 1 < n_cols:
                    graph.add_edge(index(r, c), index(r, c + 1))
                if r + 1 < n_rows:
                    graph.add_edge(index(r, c), index(r + 1, c))
        # Diagonal avenues across a random subset of blocks.
        for r in range(n_rows - 1):
            for c in range(n_cols - 1):
                if rng.random() < diagonal_fraction:
                    if rng.random() < 0.5:
                        graph.add_edge(index(r, c), index(r + 1, c + 1))
                    else:
                        graph.add_edge(index(r, c + 1), index(r + 1, c))
        # Random street removals that keep the network connected.
        edges = list(graph.edges())
        rng.shuffle(edges)
        to_remove = int(removal_fraction * len(edges))
        removed = 0
        for u, v in edges:
            if removed >= to_remove:
                break
            graph.remove_edge(u, v)
            if nx.is_connected(graph):
                removed += 1
            else:
                graph.add_edge(u, v)
        cls._set_lengths(graph)
        return cls(graph)

    @staticmethod
    def _set_lengths(graph: nx.Graph) -> None:
        for u, v in graph.edges():
            pu = graph.nodes[u]["pos"]
            pv = graph.nodes[v]["pos"]
            graph.edges[u, v]["length"] = math.hypot(pu[0] - pv[0], pu[1] - pv[1])

    # ------------------------------------------------------------------
    def position(self, node: int) -> np.ndarray:
        """``(x, y)`` of ``node`` in meters."""
        return self._positions[node]

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all intersections."""
        pts = np.array(list(self._positions.values()))
        mn = pts.min(axis=0)
        mx = pts.max(axis=0)
        return (float(mn[0]), float(mn[1]), float(mx[0]), float(mx[1]))

    def random_node(self, rng: np.random.Generator) -> int:
        """A uniformly random intersection."""
        nodes = list(self.graph.nodes())
        return nodes[int(rng.integers(len(nodes)))]

    def random_od_pair(self, rng: np.random.Generator, min_distance: float = 0.0) -> tuple[int, int]:
        """Random origin/destination with straight-line separation >= ``min_distance``."""
        for _ in range(200):
            a = self.random_node(rng)
            b = self.random_node(rng)
            if a != b:
                d = float(np.hypot(*(self.position(a) - self.position(b))))
                if d >= min_distance:
                    return a, b
        raise RuntimeError(
            f"could not find an O-D pair at least {min_distance} m apart; "
            "is min_distance larger than the network extent?"
        )

    def route(self, origin: int, destination: int) -> np.ndarray:
        """Shortest-path polyline ``(k, 2)`` from ``origin`` to ``destination``."""
        nodes = nx.shortest_path(self.graph, origin, destination, weight="length")
        return np.array([self.position(n) for n in nodes])
