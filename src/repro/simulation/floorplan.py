"""Shopping-mall floor plan (substrate for the indoor dataset).

The paper's indoor evaluation uses a private WiFi-fingerprint dataset from
a large mall; we substitute a synthetic mall (DESIGN.md §3).  The plan is a
corridor lattice with store nodes hanging off the corridors: pedestrians
can only move along corridors and into stores, which reproduces the
"complex topological structure" (walls, narrow passages) that the paper
credits for degrading frequency-based transition estimates indoors.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

__all__ = ["FloorPlan"]


class FloorPlan:
    """Walkable graph of a mall: corridor waypoints plus store nodes.

    Node attributes: ``pos`` (meters) and ``kind`` (``"corridor"`` or
    ``"store"``).  Edges carry Euclidean ``length``.
    """

    def __init__(self, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise ValueError("floor plan must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("floor plan must be connected")
        self.graph = graph
        self._positions = {n: np.asarray(d["pos"], dtype=float) for n, d in graph.nodes(data=True)}
        self._stores = [n for n, d in graph.nodes(data=True) if d["kind"] == "store"]
        self._corridors = [n for n, d in graph.nodes(data=True) if d["kind"] == "corridor"]

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        n_corridors_x: int = 6,
        n_corridors_y: int = 4,
        corridor_spacing: float = 15.0,
        store_depth: float = 5.0,
        store_fraction: float = 0.6,
        rng: np.random.Generator | None = None,
    ) -> "FloorPlan":
        """Rectangular mall: a corridor lattice with stores off the corridors.

        Parameters
        ----------
        n_corridors_x, n_corridors_y:
            Corridor intersections along each axis; the mall spans roughly
            ``n_corridors_x × corridor_spacing`` by
            ``n_corridors_y × corridor_spacing`` meters.
        store_depth:
            How far a store entrance node sits off its corridor (meters).
        store_fraction:
            Fraction of corridor nodes that get an adjacent store.
        """
        if n_corridors_x < 2 or n_corridors_y < 2:
            raise ValueError("need at least a 2x2 corridor lattice")
        rng = rng if rng is not None else np.random.default_rng()

        graph = nx.Graph()
        index = lambda r, c: r * n_corridors_x + c  # noqa: E731 - tiny local helper
        for r in range(n_corridors_y):
            for c in range(n_corridors_x):
                graph.add_node(
                    index(r, c),
                    pos=(c * corridor_spacing, r * corridor_spacing),
                    kind="corridor",
                )
        for r in range(n_corridors_y):
            for c in range(n_corridors_x):
                if c + 1 < n_corridors_x:
                    graph.add_edge(index(r, c), index(r, c + 1))
                if r + 1 < n_corridors_y:
                    graph.add_edge(index(r, c), index(r + 1, c))

        next_id = n_corridors_x * n_corridors_y
        for node in list(graph.nodes()):
            if graph.nodes[node]["kind"] != "corridor" or rng.random() >= store_fraction:
                continue
            x, y = graph.nodes[node]["pos"]
            angle = float(rng.choice([0.0, math.pi / 2, math.pi, 3 * math.pi / 2]))
            depth = store_depth * float(rng.uniform(0.6, 1.4))
            graph.add_node(
                next_id,
                pos=(x + depth * math.cos(angle), y + depth * math.sin(angle)),
                kind="store",
            )
            graph.add_edge(node, next_id)
            next_id += 1

        for u, v in graph.edges():
            pu, pv = graph.nodes[u]["pos"], graph.nodes[v]["pos"]
            graph.edges[u, v]["length"] = math.hypot(pu[0] - pv[0], pu[1] - pv[1])
        return cls(graph)

    # ------------------------------------------------------------------
    @property
    def stores(self) -> list[int]:
        """Store node ids."""
        return list(self._stores)

    @property
    def corridors(self) -> list[int]:
        """Corridor node ids."""
        return list(self._corridors)

    def position(self, node: int) -> np.ndarray:
        """``(x, y)`` of ``node`` in meters."""
        return self._positions[node]

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all nodes."""
        pts = np.array(list(self._positions.values()))
        mn = pts.min(axis=0)
        mx = pts.max(axis=0)
        return (float(mn[0]), float(mn[1]), float(mx[0]), float(mx[1]))

    def random_store(self, rng: np.random.Generator) -> int:
        """A uniformly random store (falls back to corridors if none exist)."""
        pool = self._stores if self._stores else self._corridors
        return pool[int(rng.integers(len(pool)))]

    def random_entrance(self, rng: np.random.Generator) -> int:
        """A random corridor node on the mall boundary (an 'entrance')."""
        pts = np.array([self._positions[n] for n in self._corridors])
        mn, mx = pts.min(axis=0), pts.max(axis=0)
        boundary = [
            n
            for n in self._corridors
            if (
                self._positions[n][0] in (mn[0], mx[0])
                or self._positions[n][1] in (mn[1], mx[1])
            )
        ]
        pool = boundary if boundary else self._corridors
        return pool[int(rng.integers(len(pool)))]

    def route(self, origin: int, destination: int) -> np.ndarray:
        """Shortest walkable polyline ``(k, 2)`` between two nodes."""
        nodes = nx.shortest_path(self.graph, origin, destination, weight="length")
        return np.array([self.position(n) for n in nodes])
