"""Structured account of one deadline-aware serving call.

:class:`ServiceHealth` mirrors the batch pipeline's
:class:`~repro.parallel.supervisor.RunHealth`: a clean call has ``ok``
true and no events; everything the serving layer had to absorb to meet
its deadline — degradation rungs, shed pairs, tripped breakers, dropped
or malformed events — is counted here and detailed in ``events``.
Reports are JSON-serializable (:meth:`ServiceHealth.to_dict`) so they
can be logged or exported as service metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceEvent", "ServiceHealth"]


@dataclass(frozen=True)
class ServiceEvent:
    """One serving incident: what the degradation machinery did and why."""

    kind: str  # "rung" | "shed-pair" | "degenerate" | "breaker-open" | "breaker-trip" | "malformed-event" | "queue-shed" | "deadline"
    subject: str  # pair "a~b", object id, or "" for call-level incidents
    detail: str = ""

    def __str__(self) -> str:
        where = f" on {self.subject}" if self.subject else ""
        note = f": {self.detail}" if self.detail else ""
        return f"{self.kind}{where}{note}"


@dataclass
class ServiceHealth:
    """Structured account of one deadline-aware call.

    ``rungs`` names every degradation rung *taken* across the call, in
    order (duplicates preserved: scoring 3 pairs on the coarse grid
    records ``"coarse-2x"`` three times) — the acceptance trail for
    "what accuracy did I trade for this latency?".
    """

    deadline_ms: float | None = None
    elapsed_ms: float = 0.0
    deadline_hit: bool = False
    pairs_scored: int = 0
    pairs_partial: int = 0  # returned with open [lower, upper] bounds
    pairs_shed: int = 0  # never scored: deadline ran out first
    degenerate_objects: int = 0  # windows too thin to score, skipped
    degenerate_pairs: int = 0  # pairs whose scoring raised a typed error
    malformed_events: int = 0  # non-finite sightings dropped at ingest
    shed_events: int = 0  # sightings dropped by the bounded queue
    breaker_skips: int = 0  # pairs skipped because their breaker was open
    breaker_trips: int = 0  # breakers newly tripped during this call
    rungs: list[str] = field(default_factory=list)
    events: list[ServiceEvent] = field(default_factory=list)
    #: Metrics snapshot taken when the call finished (None when obs is off).
    metrics: dict | None = None
    #: SLO burn-rate report (see :class:`repro.obs.slo.SLOTracker`), when
    #: an SLO tracker annotated this call; None otherwise.
    slo: dict | None = None

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when the call needed no degradation or shedding at all."""
        return not self.events and not self.deadline_hit

    @property
    def degraded(self) -> bool:
        """True when any rung below the full grid was taken."""
        return any(r != "full" for r in self.rungs)

    def record(self, event: ServiceEvent) -> None:
        """Append one serving incident to the account."""
        self.events.append(event)

    def take_rung(self, rung: str, subject: str = "", detail: str = "") -> None:
        """Account one degradation-ladder rung taken for ``subject``."""
        self.rungs.append(rung)
        if rung != "full":
            self.record(ServiceEvent("rung", subject, detail or rung))

    def to_dict(self) -> dict:
        """JSON-serializable form of the report."""
        return {
            "deadline_ms": self.deadline_ms,
            "elapsed_ms": self.elapsed_ms,
            "deadline_hit": self.deadline_hit,
            "pairs_scored": self.pairs_scored,
            "pairs_partial": self.pairs_partial,
            "pairs_shed": self.pairs_shed,
            "degenerate_objects": self.degenerate_objects,
            "degenerate_pairs": self.degenerate_pairs,
            "malformed_events": self.malformed_events,
            "shed_events": self.shed_events,
            "breaker_skips": self.breaker_skips,
            "breaker_trips": self.breaker_trips,
            "rungs": list(self.rungs),
            "events": [
                {"kind": e.kind, "subject": e.subject, "detail": e.detail}
                for e in self.events
            ],
            "metrics": self.metrics,
            "slo": self.slo,
        }

    def summary(self) -> str:
        """One-line human summary of the call's health."""
        if self.ok:
            return f"healthy: {self.pairs_scored} pair(s) scored at full fidelity"
        allowed = "inf" if self.deadline_ms is None else f"{self.deadline_ms:.0f}"
        return (
            f"degraded: {self.pairs_scored} scored "
            f"({self.pairs_partial} partial), {self.pairs_shed} shed, "
            f"{self.degenerate_objects + self.degenerate_pairs} degenerate skipped, "
            f"{self.breaker_skips} breaker-skipped, "
            f"rungs {self.rungs if self.rungs else 'none'}, "
            f"deadline {'HIT' if self.deadline_hit else 'met'} "
            f"({self.elapsed_ms:.0f}/{allowed} ms)"
        )
