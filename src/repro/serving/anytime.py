"""Anytime evaluation of the STS measure (Eq. 10) under a budget.

``STS(Tra, Tra') = ( Σ_i CP(t_i) + Σ_j CP(t'_j) ) / ( |Tra| + |Tra'| )``
is an average of ``N = |Tra| + |Tra'|`` co-location terms, each in
``[0, 1]``.  That structure makes the measure *anytime-evaluable* with a
rigorous error interval:

* a term at a timestamp outside the overlap of the two observed time
  spans is **exactly 0** (Eq. 5 case 3: one STP distribution is empty) —
  all such terms are resolved instantly, for free;
* every evaluated term contributes its exact value;
* every unevaluated in-overlap term lies in ``[0, 1]``.

So after evaluating a subset with partial sum ``S`` and ``u`` in-overlap
terms outstanding, the exact Eq. 10 score provably lies in
``[S / N, (S + u) / N]``.  :func:`anytime_similarity` evaluates terms in
*best-first* order — in-overlap timestamps sorted by the distance
between the two linearly-interpolated positions, closest first, so the
terms most likely to carry co-location mass are resolved early and the
lower bound climbs as fast as possible — in small batches through the
vectorized :func:`~repro.core.colocation.colocation_batch` path,
checking the :class:`~repro.serving.budget.Budget` between batches.

Per-term values are independent of how terms are batched (the batched
and single-query STP paths share one evaluation core), so a run whose
budget never expires returns **bitwise** the same score as
:meth:`repro.core.sts.STS.similarity`: the terms are accumulated into an
array in the same concatenation order and summed with the same
``ndarray.sum`` reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.colocation import colocation_batch
from ..core.trajectory import Trajectory
from ..errors import DegenerateTrajectoryError
from .budget import Budget

__all__ = ["AnytimeScore", "anytime_similarity", "filter_only_estimate"]

#: Terms per colocation batch: large enough to amortize the vectorized
#: segment pass, small enough that one batch bounds the deadline overshoot.
DEFAULT_BATCH_SIZE = 32


@dataclass(frozen=True)
class AnytimeScore:
    """A (possibly partial) STS score with a rigorous error interval.

    ``lower <= exact STS <= upper`` always holds; when ``completed`` is
    true the three coincide and ``value`` is bitwise what
    :meth:`~repro.core.sts.STS.similarity` returns.  A partial score's
    ``value`` is the interval midpoint — the minimax estimate given only
    the bound.
    """

    value: float
    lower: float
    upper: float
    evaluated_terms: int
    total_terms: int
    completed: bool
    rung: str = "full"
    elapsed_ms: float = 0.0

    @property
    def bounds(self) -> tuple[float, float]:
        """The rigorous ``(lower, upper)`` interval around the exact score."""
        return (self.lower, self.upper)

    @property
    def width(self) -> float:
        """Interval width — 0 for a completed score."""
        return self.upper - self.lower

    def __float__(self) -> float:
        return self.value

    def __str__(self) -> str:
        if self.completed:
            return f"{self.value:.4f} (exact, rung={self.rung})"
        return (
            f"{self.value:.4f} ∈ [{self.lower:.4f}, {self.upper:.4f}] "
            f"({self.evaluated_terms}/{self.total_terms} terms, rung={self.rung})"
        )


def _best_first_order(
    tra1: Trajectory, tra2: Trajectory, times: np.ndarray
) -> np.ndarray:
    """Indices of in-overlap terms, most-promising first.

    The proxy priority is the distance between the two trajectories'
    linearly-interpolated positions at each timestamp — cheap (one
    ``np.interp`` per axis per trajectory) and monotone enough in the
    true co-location probability to front-load the mass.  Terms outside
    the span overlap are excluded: their CP is exactly 0.
    """
    lo = max(tra1.start_time, tra2.start_time)
    hi = min(tra1.end_time, tra2.end_time)
    if lo > hi:
        return np.empty(0, dtype=int)
    candidates = np.nonzero((times >= lo) & (times <= hi))[0]
    if candidates.size == 0:
        return candidates
    ts = times[candidates]
    t1, xy1 = tra1.timestamps, tra1.xy
    t2, xy2 = tra2.timestamps, tra2.xy
    dx = np.interp(ts, t1, xy1[:, 0]) - np.interp(ts, t2, xy2[:, 0])
    dy = np.interp(ts, t1, xy1[:, 1]) - np.interp(ts, t2, xy2[:, 1])
    gap = np.hypot(dx, dy)
    return candidates[np.argsort(gap, kind="stable")]


def anytime_similarity(
    measure,
    tra1: Trajectory,
    tra2: Trajectory,
    budget: Budget | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rung: str = "full",
) -> AnytimeScore:
    """Eq. 10 evaluated best-first until ``budget`` expires.

    ``measure`` is any object exposing the STS-style
    ``stp_for(trajectory)`` entry point (its caches are shared, so an
    anytime call warms the same state an exact call would).  With an
    unbounded (or ``None``) budget the result is complete and bitwise
    equal to ``measure.similarity(tra1, tra2)``.
    """
    if len(tra1) == 0 or len(tra2) == 0:
        raise DegenerateTrajectoryError("STS is undefined for empty trajectories")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    budget = (budget if budget is not None else Budget.unbounded()).start()

    stp1 = measure.stp_for(tra1)
    stp2 = measure.stp_for(tra2)
    times = np.concatenate([tra1.timestamps, tra2.timestamps])
    n_terms = times.size
    cps = np.zeros(n_terms)
    order = _best_first_order(tra1, tra2, times)

    evaluated = 0
    while evaluated < order.size:
        if budget.expired(evaluated):
            break
        allowance = budget.terms_allowance(evaluated)
        take = min(batch_size, order.size - evaluated)
        if allowance < take:
            take = int(allowance)
        if take <= 0:
            break
        batch = order[evaluated : evaluated + take]
        cps[batch] = colocation_batch(stp1, stp2, times[batch])
        evaluated += take

    outstanding = int(order.size - evaluated)
    partial_sum = float(cps.sum())
    lower = partial_sum / n_terms
    upper = (partial_sum + outstanding) / n_terms
    completed = outstanding == 0
    value = lower if completed else 0.5 * (lower + upper)
    return AnytimeScore(
        value=value,
        lower=lower,
        upper=upper,
        evaluated_terms=evaluated,
        total_terms=n_terms,
        completed=completed,
        rung=rung,
        elapsed_ms=budget.elapsed_ms(),
    )


def filter_only_estimate(
    tra1: Trajectory, tra2: Trajectory, elapsed_ms: float = 0.0
) -> AnytimeScore:
    """The last degradation rung: a bound from temporal overlap alone.

    No STP machinery runs at all.  Every Eq. 10 term outside the span
    overlap is exactly 0, so ``STS <= (#terms inside the overlap) / N``
    — a rigorous upper bound computable with two ``searchsorted`` calls.
    With zero overlap the score is *exactly* 0 and the result is
    complete; otherwise the bound is open and ``value`` is its midpoint.
    """
    if len(tra1) == 0 or len(tra2) == 0:
        raise DegenerateTrajectoryError("STS is undefined for empty trajectories")
    n_terms = len(tra1) + len(tra2)
    lo = max(tra1.start_time, tra2.start_time)
    hi = min(tra1.end_time, tra2.end_time)
    inside = 0
    if lo <= hi:
        for tra in (tra1, tra2):
            ts = tra.timestamps
            inside += int(np.searchsorted(ts, hi, side="right") - np.searchsorted(ts, lo, side="left"))
    upper = inside / n_terms
    completed = inside == 0
    return AnytimeScore(
        value=0.0 if completed else 0.5 * upper,
        lower=0.0,
        upper=upper,
        evaluated_terms=0,
        total_terms=n_terms,
        completed=completed,
        rung="filter-only",
        elapsed_ms=elapsed_ms,
    )
