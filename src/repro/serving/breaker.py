"""Per-key circuit breakers for the streaming evaluation loop.

A pair of objects whose windows are pathologically expensive (huge
observation gaps → huge transition kernels) can eat an entire evaluation
deadline every tick, starving every other pair.  The classic remedy is a
circuit breaker: after ``threshold`` *consecutive* timeouts on one pair,
stop attempting it for a cooldown period, and grow the cooldown with
capped exponential backoff while the pair keeps failing.  One success
resets the breaker.

States per key (standard closed / open / half-open automaton):

* **closed** — attempts allowed; consecutive timeouts are counted.
* **open** — attempts rejected until the cooldown passes.
* **half-open** — the cooldown passed; one probe attempt is allowed.  A
  success closes the breaker, another timeout re-opens it with a longer
  cooldown.

The breaker is thread-safe: every transition happens under one lock,
and granting the half-open probe *re-arms* the cooldown, so exactly one
caller per cooldown window wins the probe — two threads observing the
cooldown's end concurrently cannot both probe (the classic half-open
stampede), and a probe whose outcome is never reported (the caller
crashed or hit an unrelated error) simply forfeits its window instead
of wedging the breaker half-open forever.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable

__all__ = ["CircuitBreaker"]


@dataclass
class _BreakerState:
    consecutive_timeouts: int = 0
    trips: int = 0
    open_until: float = float("-inf")
    half_open: bool = False


@dataclass
class CircuitBreaker:
    """Keyed circuit breaker with capped exponential cooldown.

    Parameters
    ----------
    threshold:
        Consecutive timeouts before a key's breaker trips open.
    cooldown_base:
        Cooldown after the first trip, in seconds.
    cooldown_max:
        Cooldown cap; trip ``k`` waits ``min(cooldown_max,
        cooldown_base * 2**(k-1))`` seconds.
    clock:
        Monotonic time source (injectable for tests).
    """

    threshold: int = 3
    cooldown_base: float = 1.0
    cooldown_max: float = 60.0
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    _states: dict[Hashable, _BreakerState] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")
        if self.cooldown_base <= 0 or self.cooldown_max <= 0:
            raise ValueError("cooldowns must be positive")
        from ..obs import get_registry

        transitions = get_registry().counter(
            "repro_breaker_transitions_total", "Circuit-breaker state transitions"
        )
        # Plain attributes (not dataclass fields) so repr/eq stay unchanged.
        self._m_open = transitions.child(state="open")
        self._m_half_open = transitions.child(state="half-open")
        self._m_closed = transitions.child(state="closed")
        self._lock = threading.RLock()

    def _cooldown(self, trips: int) -> float:
        return min(self.cooldown_max, self.cooldown_base * (2 ** (max(trips, 1) - 1)))

    # ------------------------------------------------------------------
    def allow(self, key: Hashable) -> bool:
        """Whether an attempt on ``key`` is currently admitted.

        At the end of a cooldown exactly *one* caller is granted the
        half-open probe: granting it re-arms ``open_until`` by the
        current cooldown, so concurrent callers racing past the same
        cooldown boundary see the breaker open again and back off.
        """
        with self._lock:
            state = self._states.get(key)
            if state is None or (
                state.trips == 0 and state.open_until == float("-inf")
            ):
                return True
            now = self.clock()
            if now >= state.open_until:
                # Cooldown over: admit one probe (half-open) and re-arm
                # so no second caller can double-probe this window.
                self._m_half_open.inc()
                state.half_open = True
                state.open_until = now + self._cooldown(state.trips)
                return True
            return False

    def record_timeout(self, key: Hashable) -> bool:
        """Account one timeout on ``key``; returns True if this *trips* it."""
        with self._lock:
            state = self._states.setdefault(key, _BreakerState())
            state.consecutive_timeouts += 1
            tripped = state.half_open or state.consecutive_timeouts >= self.threshold
            if tripped:
                state.trips += 1
                state.open_until = self.clock() + self._cooldown(state.trips)
                state.consecutive_timeouts = 0
                state.half_open = False
                self._m_open.inc()
            return tripped

    def record_success(self, key: Hashable) -> None:
        """A completed attempt closes the breaker and forgets its history."""
        with self._lock:
            if self._states.pop(key, None) is not None:
                self._m_closed.inc()

    def is_open(self, key: Hashable) -> bool:
        """Whether ``key`` is currently rejecting attempts."""
        with self._lock:
            state = self._states.get(key)
            return state is not None and self.clock() < state.open_until

    @property
    def open_keys(self) -> list[Hashable]:
        """Keys currently in the open state."""
        with self._lock:
            now = self.clock()
            return [k for k, s in self._states.items() if now < s.open_until]

    # ------------------------------------------------------------------
    # Durability (used by the streaming WAL snapshots)
    # ------------------------------------------------------------------
    def snapshot_states(self) -> list:
        """JSON-serializable per-key state for a durable snapshot.

        Keys must be strings or tuples of strings (the streaming
        detector's pair keys).  ``open_until`` is stored as *remaining*
        cooldown seconds relative to this breaker's clock, so a restore
        in a new process — whose monotonic clock starts elsewhere —
        resumes the same residual cooldown.
        """
        with self._lock:
            now = self.clock()
            entries = []
            for key, state in self._states.items():
                encoded = list(key) if isinstance(key, tuple) else key
                remaining = state.open_until - now
                if remaining == float("-inf"):
                    remaining = None  # never tripped: no cooldown running
                entries.append(
                    [
                        encoded,
                        {
                            "consecutive_timeouts": state.consecutive_timeouts,
                            "trips": state.trips,
                            "remaining_s": remaining,
                            "half_open": state.half_open,
                        },
                    ]
                )
            return entries

    def restore_states(self, entries: list) -> None:
        """Inverse of :meth:`snapshot_states` (replaces current states)."""
        with self._lock:
            self._states.clear()
            now = self.clock()
            for encoded, payload in entries:
                key = tuple(encoded) if isinstance(encoded, list) else encoded
                remaining = payload.get("remaining_s")
                self._states[key] = _BreakerState(
                    consecutive_timeouts=int(payload["consecutive_timeouts"]),
                    trips=int(payload["trips"]),
                    open_until=(
                        float("-inf") if remaining is None else now + float(remaining)
                    ),
                    half_open=bool(payload["half_open"]),
                )
