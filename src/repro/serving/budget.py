"""Resource budgets for the online serving path.

A :class:`Budget` bundles the two resources a latency-bound service must
respect — a wall-clock deadline and a memory ceiling — plus an optional
deterministic work cap (``max_terms``) used by tests and benchmarks to
exercise partial evaluation without real clocks.

The clock is injectable so tests can drive time deterministically; the
default is :func:`time.monotonic`.  Budgets are *started* lazily: the
first ``remaining``/``expired`` query (or an explicit :meth:`start`)
anchors the deadline, so a budget can be constructed ahead of the work
it governs.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Budget", "current_rss_mb"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_mb() -> float:
    """Resident set size of this process in MiB (best effort).

    Prefers ``/proc/self/statm`` (instantaneous, can go back down after a
    release); falls back to ``ru_maxrss`` (a high-water mark) where procfs
    is unavailable.  Returns 0.0 when neither source works — a memory
    ceiling then simply never trips rather than crashing the service.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * _PAGE_SIZE / (1024 * 1024)
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return peak / 1024 if sys.platform != "darwin" else peak / (1024 * 1024)
    except Exception:
        return 0.0


@dataclass
class Budget:
    """Wall-clock + memory budget governing one unit of serving work.

    Parameters
    ----------
    deadline_ms:
        Wall-clock allowance in milliseconds (``None`` = unbounded).
    max_rss_mb:
        Resident-memory ceiling in MiB (``None`` = unbounded).  Checked
        opportunistically between batches of work; crossing it makes the
        budget :meth:`expired` so consumers degrade instead of OOMing.
    max_terms:
        Deterministic cap on evaluated terms (Eq. 10 timestamps) —
        mostly for tests/benchmarks that need reproducible partial
        results independent of machine speed.  ``None`` = unbounded.
    clock:
        Monotonic time source in seconds (injectable for tests).

    A budget with every limit ``None`` never expires; the anytime scorer
    then runs to completion and returns the exact score.
    """

    deadline_ms: float | None = None
    max_rss_mb: float | None = None
    max_terms: int | None = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    _started_at: float | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {self.deadline_ms}")
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise ValueError(f"max_rss_mb must be positive, got {self.max_rss_mb}")
        if self.max_terms is not None and self.max_terms < 0:
            raise ValueError(f"max_terms must be >= 0, got {self.max_terms}")

    # ------------------------------------------------------------------
    @classmethod
    def unbounded(cls) -> "Budget":
        """A budget that never expires (the exact-evaluation path)."""
        return cls()

    @property
    def bounded(self) -> bool:
        """Whether any limit is set at all."""
        return (
            self.deadline_ms is not None
            or self.max_rss_mb is not None
            or self.max_terms is not None
        )

    def start(self) -> "Budget":
        """Anchor the deadline at the current clock reading (idempotent)."""
        if self._started_at is None:
            self._started_at = self.clock()
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    def elapsed_ms(self) -> float:
        """Milliseconds since :meth:`start` (0 before starting)."""
        if self._started_at is None:
            return 0.0
        return (self.clock() - self._started_at) * 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left on the deadline (``inf`` when unbounded)."""
        if self.deadline_ms is None:
            return float("inf")
        self.start()
        return max(0.0, self.deadline_ms - self.elapsed_ms())

    def over_memory(self) -> bool:
        """Whether the process crossed the resident-memory ceiling."""
        return self.max_rss_mb is not None and current_rss_mb() > self.max_rss_mb

    def expired(self, terms_done: int = 0) -> bool:
        """Whether any limit has been hit.

        ``terms_done`` counts work units already spent against
        ``max_terms`` (callers thread their own counter through).
        """
        if self.max_terms is not None and terms_done >= self.max_terms:
            return True
        if self.deadline_ms is not None and self.remaining_ms() <= 0.0:
            return True
        return self.over_memory()

    def terms_allowance(self, terms_done: int) -> float:
        """How many more terms ``max_terms`` permits (``inf`` if unset)."""
        if self.max_terms is None:
            return float("inf")
        return max(0, self.max_terms - terms_done)

    def sub_budget(
        self,
        fraction: float,
        max_terms: int | None = None,
        terms_done: int = 0,
    ) -> "Budget":
        """A child budget over ``fraction`` of the *remaining* deadline.

        Shares the clock and the memory ceiling (memory is a process-wide
        resource, so a child cannot have more of it).  Used by the
        degradation ladder and the cluster scatter to give each slice a
        bounded share of the remaining time.

        A parent that is already :meth:`expired` — via its deadline, the
        memory ceiling, or ``max_terms`` against ``terms_done`` — yields
        a child with zero remaining time, never a live one: the consumer
        then sheds the slice cleanly instead of starting doomed work.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        remaining = self.remaining_ms()
        if self.bounded and self.expired(terms_done):
            remaining = 0.0
        child = Budget(
            deadline_ms=None if remaining == float("inf") else remaining * fraction,
            max_rss_mb=self.max_rss_mb,
            max_terms=max_terms,
            clock=self.clock,
        )
        return child.start()

    def __repr__(self) -> str:
        parts = []
        if self.deadline_ms is not None:
            parts.append(f"deadline_ms={self.deadline_ms:g}")
        if self.max_rss_mb is not None:
            parts.append(f"max_rss_mb={self.max_rss_mb:g}")
        if self.max_terms is not None:
            parts.append(f"max_terms={self.max_terms}")
        return f"Budget({', '.join(parts) if parts else 'unbounded'})"
