"""Deadline-aware serving layer for the online STS path.

The batch pipeline (:mod:`repro.parallel`) answers "finish this matrix
even if workers die"; this package answers "give me the best score you
can *by this deadline*, and tell me what you traded for it":

* :class:`Budget` — wall-clock deadline + memory ceiling (+ optional
  deterministic term cap) governing one unit of serving work.
* :func:`anytime_similarity` / :class:`AnytimeScore` — Eq. 10 evaluated
  best-first, stoppable at any point, with a rigorous
  ``[lower, upper]`` interval around the exact score.
* :class:`DeadlineScorer` — the degradation ladder: full grid →
  coarsened grid → filter-only bound.
* :class:`CircuitBreaker` — per-pair trip/cooldown for repeatedly
  timing-out work.
* :class:`ServiceHealth` / :class:`ServiceEvent` — the structured
  account of what a deadline-aware call shed, skipped, or degraded.
"""

from .anytime import AnytimeScore, anytime_similarity, filter_only_estimate
from .breaker import CircuitBreaker
from .budget import Budget, current_rss_mb
from .health import ServiceEvent, ServiceHealth
from .ladder import DeadlineScorer

__all__ = [
    "AnytimeScore",
    "Budget",
    "CircuitBreaker",
    "DeadlineScorer",
    "ServiceEvent",
    "ServiceHealth",
    "anytime_similarity",
    "current_rss_mb",
    "filter_only_estimate",
]
