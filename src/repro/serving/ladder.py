"""The degradation ladder: trade accuracy for latency, rung by rung.

:class:`DeadlineScorer` wraps an exact :class:`~repro.core.sts.STS`
measure and scores pairs under a :class:`~repro.serving.budget.Budget`
by descending a fixed ladder until something finishes in time:

1. ``full`` — anytime evaluation on the configured grid.  Completing
   here is *bitwise* the unbounded ``STS.similarity`` result.
2. ``coarse-2x`` / ``coarse-4x`` — the same measure rebuilt on a
   2×/4×-coarsened grid (:meth:`~repro.core.grid.Grid.coarsen`).
   Quadratically fewer cells make the STP distributions far cheaper, at
   the cost of spatial resolution.
3. ``filter-only`` — no STP machinery at all: the rigorous bound from
   temporal-overlap counting (:func:`~repro.serving.anytime.filter_only_estimate`).

Every rung gets a :meth:`~repro.serving.budget.Budget.sub_budget` slice
of the *remaining* deadline, so one pathological rung cannot eat the
whole call.  Whatever rung answers, the returned
:class:`~repro.serving.anytime.AnytimeScore` carries an interval that
provably contains the exact full-grid score:

* a completed ``full`` run is exact (zero-width interval);
* a partial ``full`` run carries its own evaluated/unevaluated bound;
* coarse-grid scores approximate a *different* discretization, so their
  value is reported as the estimate but their interval falls back to the
  always-valid filter bound ``[0, n_overlap / N]`` (clipping the value
  into it);
* ``filter-only`` is that bound itself.

The per-pair rung taken is recorded through
:meth:`~repro.serving.health.ServiceHealth.take_rung`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

from ..core.sts import STS
from ..core.trajectory import Trajectory
from ..obs import get_registry, trace_span
from .anytime import AnytimeScore, anytime_similarity, filter_only_estimate
from .budget import Budget
from .health import ServiceHealth

__all__ = ["DeadlineScorer"]

#: Fraction of the remaining deadline granted to each computing rung
#: (full, then one entry per coarse factor).  The trailing rung —
#: filter-only — is effectively free and needs no slice.
DEFAULT_RUNG_FRACTIONS = (0.5, 0.6, 0.8)


class DeadlineScorer:
    """Budgeted STS scoring over a full → coarse → filter-only ladder.

    Parameters
    ----------
    measure:
        The exact :class:`~repro.core.sts.STS` instance; rung 1 scores on
        it directly (sharing its caches with the batch path).
    coarse_factors:
        Cell-merge factors for the intermediate rungs, finest first.
    rung_fractions:
        Per-rung share of the *remaining* deadline, one entry per
        computing rung (``1 + len(coarse_factors)`` of them).
    batch_size:
        Terms per anytime batch; bounds the deadline overshoot.
    registry:
        Metrics registry receiving per-rung counters and scoring-latency
        histograms.  Defaults to the wrapped measure's registry so batch
        and serving metrics land in one place.
    """

    def __init__(
        self,
        measure: STS,
        coarse_factors: Sequence[int] = (2, 4),
        rung_fractions: Sequence[float] | None = None,
        batch_size: int = 32,
        registry=None,
    ):
        if rung_fractions is None:
            rung_fractions = DEFAULT_RUNG_FRACTIONS[: 1 + len(coarse_factors)]
        if len(rung_fractions) != 1 + len(coarse_factors):
            raise ValueError(
                f"need {1 + len(coarse_factors)} rung fractions "
                f"(full + one per coarse factor), got {len(rung_fractions)}"
            )
        for factor in coarse_factors:
            if int(factor) != factor or factor < 2:
                raise ValueError(f"coarse factors must be integers >= 2, got {factor}")
        self.measure = measure
        self.coarse_factors = tuple(int(f) for f in coarse_factors)
        self.rung_fractions = tuple(float(f) for f in rung_fractions)
        self.batch_size = batch_size
        self._coarse: dict[int, STS] = {}
        if registry is not None:
            self._registry = registry
        else:
            self._registry = getattr(measure, "_registry", None) or get_registry()
        rung_counter = self._registry.counter(
            "repro_ladder_rung_total", "Degradation-ladder rungs taken per pair"
        )
        self._m_rung = {
            rung: rung_counter.child(rung=rung) for rung in self.rungs
        }
        self._h_score = self._registry.histogram(
            "repro_serving_score_seconds", "Wall seconds per DeadlineScorer.score call"
        ).child()

    # ------------------------------------------------------------------
    def coarse_measure(self, factor: int) -> STS:
        """The (lazily built, cached) measure on the ``factor``×-merged grid."""
        measure = self._coarse.get(factor)
        if measure is None:
            measure = STS(
                self.measure.grid.coarsen(factor),
                noise_model=self.measure.noise_model,
                transition=self.measure._transition_factory,
                mode=self.measure.mode,
                stp_cache_size=self.measure.stp_cache_size,
                registry=self._registry,
            )
            measure.name = f"{self.measure.name}@{factor}x"
            self._coarse[factor] = measure
        return measure

    @property
    def rungs(self) -> tuple[str, ...]:
        """Ladder rung names, best first."""
        return ("full", *(f"coarse-{f}x" for f in self.coarse_factors), "filter-only")

    # ------------------------------------------------------------------
    def score(
        self,
        tra1: Trajectory,
        tra2: Trajectory,
        budget: Budget | None = None,
        health: ServiceHealth | None = None,
        subject: str = "",
    ) -> AnytimeScore:
        """Score one pair within ``budget``, descending rungs as needed."""
        t0 = perf_counter()
        try:
            with trace_span("serving.score"):
                return self._score_inner(tra1, tra2, budget, health, subject)
        finally:
            self._h_score.observe(perf_counter() - t0)

    def _count_rung(self, rung: str) -> None:
        handle = self._m_rung.get(rung)
        if handle is not None:
            handle.inc()

    def _score_inner(
        self,
        tra1: Trajectory,
        tra2: Trajectory,
        budget: Budget | None,
        health: ServiceHealth | None,
        subject: str,
    ) -> AnytimeScore:
        budget = (budget if budget is not None else Budget.unbounded()).start()
        if not budget.bounded:
            result = anytime_similarity(
                self.measure, tra1, tra2, budget=budget, batch_size=self.batch_size
            )
            self._count_rung(result.rung)
            if health is not None:
                health.take_rung(result.rung, subject)
            return result

        best_partial: AnytimeScore | None = None
        ladder = [("full", self.measure)] + [
            (f"coarse-{f}x", self.coarse_measure(f)) for f in self.coarse_factors
        ]
        for (rung, measure), fraction in zip(ladder, self.rung_fractions):
            if budget.expired():
                break
            slice_budget = budget.sub_budget(
                fraction, max_terms=budget.max_terms if rung == "full" else None
            )
            result = anytime_similarity(
                measure, tra1, tra2, budget=slice_budget, batch_size=self.batch_size, rung=rung
            )
            if result.completed:
                if rung != "full":
                    result = self._with_filter_bounds(result, tra1, tra2, budget)
                self._count_rung(rung)
                if health is not None:
                    health.take_rung(rung, subject, f"completed in {result.elapsed_ms:.1f} ms")
                return self._stamped(result, budget)
            if rung == "full":
                # Only the full-grid partial carries a bound on the exact
                # score; coarse partials approximate a different grid.
                best_partial = result

        fallback = filter_only_estimate(tra1, tra2, elapsed_ms=budget.elapsed_ms())
        if best_partial is not None and best_partial.width <= fallback.width:
            chosen = best_partial
        else:
            chosen = fallback
        self._count_rung(chosen.rung)
        if health is not None:
            health.take_rung(
                chosen.rung,
                subject,
                f"partial: {chosen.evaluated_terms}/{chosen.total_terms} terms",
            )
        return self._stamped(chosen, budget)

    # ------------------------------------------------------------------
    def _with_filter_bounds(
        self, result: AnytimeScore, tra1: Trajectory, tra2: Trajectory, budget: Budget
    ) -> AnytimeScore:
        """Re-bound a coarse-grid score with the always-valid filter interval."""
        bound = filter_only_estimate(tra1, tra2)
        value = min(max(result.value, bound.lower), bound.upper)
        return AnytimeScore(
            value=value,
            lower=bound.lower,
            upper=bound.upper,
            evaluated_terms=result.evaluated_terms,
            total_terms=result.total_terms,
            completed=False,
            rung=result.rung,
            elapsed_ms=budget.elapsed_ms(),
        )

    @staticmethod
    def _stamped(result: AnytimeScore, budget: Budget) -> AnytimeScore:
        """The result with ``elapsed_ms`` measured against the call budget."""
        if result.elapsed_ms == budget.elapsed_ms():
            return result
        return AnytimeScore(
            value=result.value,
            lower=result.lower,
            upper=result.upper,
            evaluated_terms=result.evaluated_terms,
            total_terms=result.total_terms,
            completed=result.completed,
            rung=result.rung,
            elapsed_ms=budget.elapsed_ms(),
        )

    def __repr__(self) -> str:
        return (
            f"DeadlineScorer(measure={self.measure.name}, "
            f"rungs={list(self.rungs)!r})"
        )
