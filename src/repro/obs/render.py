"""Human-facing rendering and validation of observability output.

Two jobs live here:

* :func:`render_snapshot` — pretty-print a registry snapshot (the dict
  from :meth:`MetricsRegistry.snapshot`) for terminals and the
  ``repro obs`` subcommand;
* :func:`validate_prometheus_text` — a promtool-style line validator
  for the text exposition format, used by the golden test and the CI
  obs-smoke job (no promtool binary in the image, so we re-check the
  grammar with regexes);
* :func:`validate_chrome_trace` / :func:`validate_metrics_snapshot` /
  :func:`validate_slo_report` — structural validators for the other
  dump formats ``repro obs --check`` accepts;
* :func:`render_trace_breakdown` — the ``repro-sts link --explain``
  per-stage, per-shard latency tree over a stitched Chrome trace.
"""

from __future__ import annotations

import re

__all__ = [
    "render_snapshot",
    "render_trace_breakdown",
    "validate_chrome_trace",
    "validate_metrics_snapshot",
    "validate_prometheus_text",
    "validate_slo_report",
]

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
_LABEL_VALUE = r'"(?:[^"\\\n]|\\["\\n])*"'
_LABELS = rf"\{{{_LABEL_NAME}={_LABEL_VALUE}(?:,{_LABEL_NAME}={_LABEL_VALUE})*\}}"
_VALUE = r"(?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)|[+-]?Inf|NaN)"

_SAMPLE_RE = re.compile(rf"^{_METRIC_NAME}(?:{_LABELS})? {_VALUE}(?: \d+)?$")
_HELP_RE = re.compile(rf"^# HELP {_METRIC_NAME} .*$")
_TYPE_RE = re.compile(
    rf"^# TYPE {_METRIC_NAME} (?:counter|gauge|histogram|summary|untyped)$"
)
_COMMENT_RE = re.compile(r"^#(?!\s*(HELP|TYPE)\b).*$")


def validate_prometheus_text(text: str) -> list[str]:
    """Return a list of error strings; empty means the exposition parses."""
    errors: list[str] = []
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line) or _TYPE_RE.match(line) or _COMMENT_RE.match(line):
                match = re.match(rf"^# TYPE ({_METRIC_NAME}) ", line)
                if match:
                    name = match.group(1)
                    if name in typed:
                        errors.append(f"line {lineno}: duplicate TYPE for {name!r}")
                    typed.add(name)
                continue
            errors.append(f"line {lineno}: malformed comment line: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
    return errors


def _format_number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_snapshot(snapshot: dict, indent: str = "  ") -> str:
    """Render a metrics snapshot as an aligned, grouped text report."""
    if not snapshot or not any(snapshot.get(k) for k in ("counters", "gauges", "histograms")):
        return "(no metrics recorded)"
    lines: list[str] = []

    def section(title: str, series_map: dict) -> None:
        if not series_map:
            return
        lines.append(f"{title}:")
        for name in sorted(series_map):
            series = series_map[name]
            if len(series) == 1 and "" in series:
                lines.append(f"{indent}{name} = {_format_number(series[''])}")
            else:
                lines.append(f"{indent}{name}")
                for key in sorted(series):
                    label = key if key else "(no labels)"
                    lines.append(f"{indent * 2}{label} = {_format_number(series[key])}")
        lines.append("")

    section("counters", snapshot.get("counters", {}))
    section("gauges", snapshot.get("gauges", {}))

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            lines.append(f"{indent}{name}")
            for key in sorted(histograms[name]):
                stats = histograms[name][key]
                label = key if key else "(no labels)"
                lines.append(
                    f"{indent * 2}{label}: count={stats['count']} "
                    f"sum={stats['sum']:.6g}s "
                    f"p50={stats['p50'] * 1e3:.3f}ms "
                    f"p95={stats['p95'] * 1e3:.3f}ms "
                    f"p99={stats['p99'] * 1e3:.3f}ms"
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
# Chrome-trace, snapshot and SLO-report validation (repro obs --check)
# ----------------------------------------------------------------------
def _trace_events(trace) -> list | None:
    if isinstance(trace, dict):
        trace = trace.get("traceEvents")
    return trace if isinstance(trace, list) else None


def validate_chrome_trace(trace) -> list[str]:
    """Structural validation of Chrome ``trace_event`` JSON.

    Accepts the bare event list or the ``{"traceEvents": [...]}`` object
    form.  Checks: every event is an object with a name and a known
    phase; timed events carry numeric non-negative ``ts`` (and ``dur``
    for complete "X" events) plus ``pid``/``tid``; ``ts`` is monotonic
    non-decreasing in list order; "B"/"E" duration events are properly
    matched per (pid, tid).  Returns error strings; empty means valid.
    """
    events = _trace_events(trace)
    if events is None:
        return ["trace is not a list of events (or a traceEvents object)"]
    errors: list[str] = []
    last_ts: float | None = None
    open_stacks: dict[tuple, list] = {}
    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object: {event!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata events carry no timing
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: missing or negative ts: {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(
                f"{where}: ts {ts} goes backwards (previous {last_ts})"
            )
        last_ts = ts
        if "pid" not in event or "tid" not in event:
            errors.append(f"{where}: missing pid/tid")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event missing or negative dur: {dur!r}")
        elif ph in ("B", "E"):
            lane = (event.get("pid"), event.get("tid"))
            stack = open_stacks.setdefault(lane, [])
            if ph == "B":
                stack.append((i, name))
            elif not stack:
                errors.append(f"{where}: E event with no open B on {lane}")
            else:
                j, open_name = stack.pop()
                if isinstance(name, str) and name and name != open_name:
                    errors.append(
                        f"{where}: E {name!r} does not match B {open_name!r} "
                        f"(event {j}) on {lane}"
                    )
    for lane, stack in open_stacks.items():
        for j, name in stack:
            errors.append(f"event {j}: B {name!r} never closed on {lane}")
    return errors


def validate_metrics_snapshot(snapshot) -> list[str]:
    """Structural validation of a registry snapshot dict."""
    if not isinstance(snapshot, dict):
        return ["snapshot is not an object"]
    errors: list[str] = []
    known = ("counters", "gauges", "histograms")
    for key in snapshot:
        if key not in known:
            errors.append(f"unknown top-level section {key!r}")
    for section in ("counters", "gauges"):
        for name, series in (snapshot.get(section) or {}).items():
            if not isinstance(series, dict):
                errors.append(f"{section}.{name}: series is not an object")
                continue
            for key, value in series.items():
                if not isinstance(value, (int, float)):
                    errors.append(
                        f"{section}.{name}{{{key}}}: non-numeric value {value!r}"
                    )
    for name, series in (snapshot.get("histograms") or {}).items():
        if not isinstance(series, dict):
            errors.append(f"histograms.{name}: series is not an object")
            continue
        for key, stats in series.items():
            where = f"histograms.{name}{{{key}}}"
            if not isinstance(stats, dict):
                errors.append(f"{where}: stats is not an object")
                continue
            missing = [
                k
                for k in ("count", "sum", "min", "max", "p50", "p95", "p99", "buckets")
                if k not in stats
            ]
            if missing:
                errors.append(f"{where}: missing keys {missing}")
                continue
            buckets = stats["buckets"]
            if not isinstance(buckets, list) or not buckets:
                errors.append(f"{where}: buckets is not a non-empty list")
                continue
            ok_shape = all(
                isinstance(b, (list, tuple))
                and len(b) == 2
                and (b[0] == "+Inf" or isinstance(b[0], (int, float)))
                and isinstance(b[1], int)
                and b[1] >= 0
                for b in buckets
            )
            if not ok_shape:
                errors.append(f"{where}: malformed bucket entries")
                continue
            if buckets[-1][0] != "+Inf":
                errors.append(f"{where}: last bucket must be +Inf")
            total = sum(b[1] for b in buckets)
            if total != stats["count"]:
                errors.append(
                    f"{where}: bucket counts sum to {total}, count is {stats['count']}"
                )
    return errors


def validate_slo_report(report) -> list[str]:
    """Structural validation of an ``/slo`` (or ``repro obs slo``) report."""
    if not isinstance(report, dict) or "slos" not in report:
        return ["SLO report is not an object with an 'slos' list"]
    if not isinstance(report["slos"], list):
        return ["'slos' is not a list"]
    errors: list[str] = []
    states = ("ok", "warn", "page", "no_data")
    for i, slo in enumerate(report["slos"]):
        where = f"slos[{i}]"
        if not isinstance(slo, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(slo.get("name"), str) or not slo.get("name"):
            errors.append(f"{where}: missing name")
        objective = slo.get("objective")
        if not isinstance(objective, (int, float)) or not 0 < objective <= 1:
            errors.append(f"{where}: objective must be in (0, 1], got {objective!r}")
        if slo.get("state") not in states:
            errors.append(f"{where}: state must be one of {states}, got {slo.get('state')!r}")
        for window in ("fast", "slow"):
            stats = slo.get(window)
            if stats is None:
                continue
            if not isinstance(stats, dict) or not isinstance(
                stats.get("burn_rate"), (int, float)
            ):
                errors.append(f"{where}.{window}: missing numeric burn_rate")
    return errors


# ----------------------------------------------------------------------
# --explain: per-stage, per-shard latency breakdown of a stitched trace
# ----------------------------------------------------------------------
_BREAKDOWN_ATTRS = (
    "shard", "replica", "hedge", "pairs", "gallery", "survivors", "shards",
)


def render_trace_breakdown(trace, indent: str = "  ") -> str:
    """Render a stitched Chrome trace as a latency tree plus stage totals.

    Nesting follows the explicit ``span_id``/``parent_span_id`` args the
    stitcher emits (time containment cannot link spans across processes);
    events without ids are shown flat in timestamp order.
    """
    events = _trace_events(trace)
    if not events:
        return "(no trace events)"
    events = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    if not events:
        return "(no complete spans in trace)"
    by_id: dict[str, dict] = {}
    children: dict[str, list] = {}
    roots: list[dict] = []
    for event in events:
        args = event.get("args") or {}
        span_id = args.get("span_id")
        if span_id:
            by_id[span_id] = event
    for event in events:
        args = event.get("args") or {}
        parent = args.get("parent_span_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(event)
        else:
            roots.append(event)
    roots.sort(key=lambda e: e.get("ts", 0))

    lines: list[str] = []
    totals: dict[str, list] = {}

    def describe(event: dict) -> str:
        args = event.get("args") or {}
        bits = [
            f"{k}={args[k]}" for k in _BREAKDOWN_ATTRS if k in args
        ]
        bits.append(f"pid={event.get('pid')}")
        return "  [" + " ".join(bits) + "]"

    def walk(event: dict, depth: int) -> None:
        dur_ms = float(event.get("dur", 0.0)) / 1e3
        name = event.get("name", "?")
        agg = totals.setdefault(name, [0.0, 0])
        agg[0] += dur_ms
        agg[1] += 1
        lines.append(f"{indent * depth}{name:<32} {dur_ms:>9.2f} ms{describe(event)}")
        span_id = (event.get("args") or {}).get("span_id")
        kids = children.get(span_id, []) if span_id else []
        for child in sorted(kids, key=lambda e: e.get("ts", 0)):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    lines.append("")
    lines.append("stage totals:")
    for name in sorted(totals, key=lambda n: -totals[n][0]):
        total_ms, count = totals[name]
        lines.append(f"{indent}{name:<32} {total_ms:>9.2f} ms  (x{count})")
    return "\n".join(lines) + "\n"
