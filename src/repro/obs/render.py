"""Human-facing rendering and validation of observability output.

Two jobs live here:

* :func:`render_snapshot` — pretty-print a registry snapshot (the dict
  from :meth:`MetricsRegistry.snapshot`) for terminals and the
  ``repro obs`` subcommand;
* :func:`validate_prometheus_text` — a promtool-style line validator
  for the text exposition format, used by the golden test and the CI
  obs-smoke job (no promtool binary in the image, so we re-check the
  grammar with regexes).
"""

from __future__ import annotations

import re

__all__ = ["render_snapshot", "validate_prometheus_text"]

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
_LABEL_VALUE = r'"(?:[^"\\\n]|\\["\\n])*"'
_LABELS = rf"\{{{_LABEL_NAME}={_LABEL_VALUE}(?:,{_LABEL_NAME}={_LABEL_VALUE})*\}}"
_VALUE = r"(?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)|[+-]?Inf|NaN)"

_SAMPLE_RE = re.compile(rf"^{_METRIC_NAME}(?:{_LABELS})? {_VALUE}(?: \d+)?$")
_HELP_RE = re.compile(rf"^# HELP {_METRIC_NAME} .*$")
_TYPE_RE = re.compile(
    rf"^# TYPE {_METRIC_NAME} (?:counter|gauge|histogram|summary|untyped)$"
)
_COMMENT_RE = re.compile(r"^#(?!\s*(HELP|TYPE)\b).*$")


def validate_prometheus_text(text: str) -> list[str]:
    """Return a list of error strings; empty means the exposition parses."""
    errors: list[str] = []
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line) or _TYPE_RE.match(line) or _COMMENT_RE.match(line):
                match = re.match(rf"^# TYPE ({_METRIC_NAME}) ", line)
                if match:
                    name = match.group(1)
                    if name in typed:
                        errors.append(f"line {lineno}: duplicate TYPE for {name!r}")
                    typed.add(name)
                continue
            errors.append(f"line {lineno}: malformed comment line: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
    return errors


def _format_number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_snapshot(snapshot: dict, indent: str = "  ") -> str:
    """Render a metrics snapshot as an aligned, grouped text report."""
    if not snapshot or not any(snapshot.get(k) for k in ("counters", "gauges", "histograms")):
        return "(no metrics recorded)"
    lines: list[str] = []

    def section(title: str, series_map: dict) -> None:
        if not series_map:
            return
        lines.append(f"{title}:")
        for name in sorted(series_map):
            series = series_map[name]
            if len(series) == 1 and "" in series:
                lines.append(f"{indent}{name} = {_format_number(series[''])}")
            else:
                lines.append(f"{indent}{name}")
                for key in sorted(series):
                    label = key if key else "(no labels)"
                    lines.append(f"{indent * 2}{label} = {_format_number(series[key])}")
        lines.append("")

    section("counters", snapshot.get("counters", {}))
    section("gauges", snapshot.get("gauges", {}))

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            lines.append(f"{indent}{name}")
            for key in sorted(histograms[name]):
                stats = histograms[name][key]
                label = key if key else "(no labels)"
                lines.append(
                    f"{indent * 2}{label}: count={stats['count']} "
                    f"sum={stats['sum']:.6g}s "
                    f"p50={stats['p50'] * 1e3:.3f}ms "
                    f"p95={stats['p95'] * 1e3:.3f}ms "
                    f"p99={stats['p99'] * 1e3:.3f}ms"
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
