"""Zero-dependency live metrics exporter over stdlib ``http.server``.

:class:`MetricsExporter` runs a :class:`ThreadingHTTPServer` on a
daemon thread and serves the process's observability surface while a
run is in flight:

* ``GET /metrics``       — Prometheus text exposition (scrape target);
* ``GET /metrics.json``  — the registry snapshot as JSON;
* ``GET /healthz``       — liveness: status, pid, uptime;
* ``GET /slo``           — the attached :class:`SLOTracker` evaluation
  (sampled per request), or an empty report when none is attached.

The exporter binds ``127.0.0.1`` by default and accepts ``port=0`` for
an ephemeral port (tests); :meth:`MetricsExporter.from_spec` parses the
CLI's ``[HOST:]PORT`` form.  Request handling never touches scoring hot
paths — snapshots are taken inside the request thread.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .registry import get_registry

__all__ = ["MetricsExporter"]


class MetricsExporter:
    """Background HTTP server exposing a registry (and optional SLOs)."""

    def __init__(
        self,
        registry=None,
        slo_tracker=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._registry = registry if registry is not None else get_registry()
        self._slo_tracker = slo_tracker
        self._requested = (host, int(port))
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "MetricsExporter":
        """Build from the CLI's ``PORT`` or ``HOST:PORT`` string."""
        spec = str(spec).strip()
        if ":" in spec:
            host, _, port = spec.rpartition(":")
            return cls(host=host or "127.0.0.1", port=int(port), **kwargs)
        return cls(port=int(spec), **kwargs)

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — meaningful after :meth:`start`."""
        if self._server is not None:
            return self._server.server_address[:2]
        return self._requested

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MetricsExporter":
        """Bind and serve on a daemon thread; returns self."""
        if self._server is not None:
            return self
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                exporter._handle(self)

            def log_message(self, format, *args):  # noqa: A002
                pass  # the exporter must not spam the run's stdout

        self._server = ThreadingHTTPServer(self._requested, _Handler)
        self._server.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and release the port."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self._registry.to_prometheus().encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/metrics.json":
                body = json.dumps(self._registry.snapshot()).encode()
                ctype = "application/json"
            elif path == "/healthz":
                body = json.dumps(
                    {
                        "status": "ok",
                        "pid": os.getpid(),
                        "uptime_s": round(time.monotonic() - self._started_at, 3),
                    }
                ).encode()
                ctype = "application/json"
            elif path == "/slo":
                if self._slo_tracker is not None:
                    report = self._slo_tracker.evaluate()
                else:
                    report = {"slos": [], "sampled": 0}
                body = json.dumps(report).encode()
                ctype = "application/json"
            else:
                request.send_error(404, "unknown path")
                return
        except Exception as exc:  # pragma: no cover - defensive
            request.send_error(500, f"exporter error: {exc}")
            return
        request.send_response(200)
        request.send_header("Content-Type", ctype)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)
