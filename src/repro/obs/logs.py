"""Structured (JSONL) process logs: emit, read, merge, render.

Cluster replica workers redirect stdout/stderr into per-replica files
under ``REPRO_CLUSTER_LOG_DIR``; this module defines the record format
they emit — one JSON object per line with a UTC timestamp, pid, level
and the emitting replica's shard/replica ids — and the tooling that
makes a directory of such files legible:

* :class:`JsonlLogger` — bound-field line writer (flushes per record,
  so a SIGKILLed worker loses at most the line being written);
* :func:`read_log_dir` — parse every ``*.log`` file, wrapping lines
  that are not JSON (tracebacks, stray prints from third-party code)
  as ``raw`` records instead of failing;
* :func:`merge_records` / :func:`render_records` — a time-ordered
  fleet-wide view, printed by ``repro obs logs <dir>``.
"""

from __future__ import annotations

import datetime
import json
import os
import sys
from pathlib import Path

__all__ = [
    "JsonlLogger",
    "log_record",
    "merge_records",
    "read_log_dir",
    "render_records",
]

_LOG_SUFFIXES = (".log", ".jsonl")


def _utc_now() -> str:
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="microseconds")
        .replace("+00:00", "Z")
    )


def log_record(level: str, message: str, **fields) -> dict:
    """One structured record: UTC ts + pid + level + message + fields."""
    record = {"ts": _utc_now(), "pid": os.getpid(), "level": str(level)}
    record.update(fields)
    record["message"] = str(message)
    return record


class JsonlLogger:
    """Writes one JSON object per line, with fields bound at construction.

    ``stream`` defaults to ``sys.stdout`` looked up per record, so a
    worker that re-binds its stdout (the cluster log redirect) keeps
    logging to the right place.
    """

    def __init__(self, stream=None, **bound):
        self._stream = stream
        self._bound = bound

    def log(self, level: str, message: str, **fields) -> dict:
        """Emit one record at ``level``, merging bound and call fields."""
        record = log_record(level, message, **{**self._bound, **fields})
        stream = self._stream if self._stream is not None else sys.stdout
        try:
            stream.write(json.dumps(record, default=str) + "\n")
            stream.flush()
        except (ValueError, OSError):
            pass  # a closed/redirected-away stream must never kill the worker
        return record

    def info(self, message: str, **fields) -> dict:
        """Emit one ``info``-level record."""
        return self.log("info", message, **fields)

    def warning(self, message: str, **fields) -> dict:
        """Emit one ``warning``-level record."""
        return self.log("warning", message, **fields)

    def error(self, message: str, **fields) -> dict:
        """Emit one ``error``-level record."""
        return self.log("error", message, **fields)


# ----------------------------------------------------------------------
# Reading and rendering
# ----------------------------------------------------------------------
def read_log_records(path) -> list[dict]:
    """Records from one file; non-JSON lines become ``raw`` records."""
    records: list[dict] = []
    path = Path(path)
    try:
        text = path.read_text(errors="replace")
    except OSError:
        return records
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            parsed = None
        if isinstance(parsed, dict):
            parsed.setdefault("file", path.name)
            records.append(parsed)
        else:
            records.append({"level": "raw", "message": line, "file": path.name})
    return records


def read_log_dir(directory) -> list[dict]:
    """All records from every log file in ``directory`` (non-recursive)."""
    directory = Path(directory)
    records: list[dict] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.iterdir()):
        if path.suffix in _LOG_SUFFIXES and path.is_file():
            records.extend(read_log_records(path))
    return records


def merge_records(records) -> list[dict]:
    """Time-ordered view: sort by ts, untimestamped records last (stable)."""
    return sorted(records, key=lambda r: (r.get("ts") is None, r.get("ts") or ""))


_SKIP_FIELDS = ("ts", "level", "message", "file")


def render_records(records) -> str:
    """One aligned line per record for terminals."""
    lines = []
    for record in records:
        ts = record.get("ts", "-")
        level = str(record.get("level", "info")).upper()
        context = " ".join(
            f"{k}={record[k]}" for k in record if k not in _SKIP_FIELDS
        )
        message = record.get("message", "")
        lines.append(f"{ts} {level:<7} {message}" + (f"  {context}" if context else ""))
    return "\n".join(lines) + ("\n" if lines else "")
