"""Zero-dependency observability: metrics, tracing, aggregation, export.

Quickstart::

    from repro.obs import get_registry, trace_span

    reg = get_registry()
    calls = reg.counter("repro_sts_similarity_calls_total", "similarity() calls")
    with trace_span("pairwise", gallery=50):
        calls.inc()
    print(reg.to_prometheus())

Beyond the in-process registry/tracer pair, the package carries the
distributed plane: :mod:`repro.obs.aggregate` (mergeable snapshots and
worker deltas), cross-process trace stitching helpers in
:mod:`repro.obs.tracing`, the live HTTP exporter
(:class:`MetricsExporter`), burn-rate SLOs (:class:`SLOTracker`) and
structured JSONL process logs (:mod:`repro.obs.logs`).

Set ``REPRO_OBS=off`` (before import/construction) to disable every
instrument and span with near-zero residual cost.
"""

from .aggregate import (
    DeltaSource,
    hist_stats_quantile,
    merge_into_registry,
    merge_snapshots,
    parse_label_str,
    snapshot_delta,
    snapshot_is_empty,
)
from .export import MetricsExporter
from .logs import JsonlLogger, log_record, merge_records, read_log_dir, render_records
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    enabled,
    get_registry,
    set_enabled,
    set_registry,
)
from .render import (
    render_snapshot,
    render_trace_breakdown,
    validate_chrome_trace,
    validate_metrics_snapshot,
    validate_prometheus_text,
    validate_slo_report,
)
from .slo import SLO, SLOTracker, default_slos
from .tracing import (
    Span,
    Tracer,
    adopt_span,
    current_span,
    get_tracer,
    new_trace_id,
    set_tracer,
    span_from_payload,
    span_payload,
    spans_to_chrome,
    trace_span,
    traced,
)

__all__ = [
    "Counter",
    "DeltaSource",
    "Gauge",
    "Histogram",
    "JsonlLogger",
    "MetricsExporter",
    "MetricsRegistry",
    "NullRegistry",
    "SLO",
    "SLOTracker",
    "Span",
    "Tracer",
    "adopt_span",
    "current_span",
    "default_slos",
    "enabled",
    "get_registry",
    "get_tracer",
    "hist_stats_quantile",
    "log_record",
    "merge_into_registry",
    "merge_records",
    "merge_snapshots",
    "new_trace_id",
    "parse_label_str",
    "read_log_dir",
    "render_records",
    "render_snapshot",
    "render_trace_breakdown",
    "set_enabled",
    "set_registry",
    "set_tracer",
    "snapshot_delta",
    "snapshot_is_empty",
    "span_from_payload",
    "span_payload",
    "spans_to_chrome",
    "trace_span",
    "traced",
    "validate_chrome_trace",
    "validate_metrics_snapshot",
    "validate_prometheus_text",
    "validate_slo_report",
]
