"""Zero-dependency observability: metrics, tracing, rendering.

Quickstart::

    from repro.obs import get_registry, trace_span

    reg = get_registry()
    calls = reg.counter("repro_sts_similarity_calls_total", "similarity() calls")
    with trace_span("pairwise", gallery=50):
        calls.inc()
    print(reg.to_prometheus())

Set ``REPRO_OBS=off`` (before import/construction) to disable every
instrument and span with near-zero residual cost.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    enabled,
    get_registry,
    set_enabled,
    set_registry,
)
from .render import render_snapshot, validate_prometheus_text
from .tracing import Span, Tracer, get_tracer, set_tracer, trace_span, traced

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "Tracer",
    "enabled",
    "get_registry",
    "get_tracer",
    "render_snapshot",
    "set_enabled",
    "set_registry",
    "set_tracer",
    "trace_span",
    "traced",
    "validate_prometheus_text",
]
