"""Zero-dependency metrics: counters, gauges and fixed-bucket histograms.

The registry is the aggregation point for everything the pipeline counts
and times — similarity calls, stage seconds, cache hits, degradation
rungs.  It is deliberately tiny (no prometheus_client, no OpenTelemetry)
because the scoring hot paths cannot afford import weight or per-sample
allocation:

* instruments are created once (at component construction) and *bound*
  to a label set with :meth:`Counter.child`, so a hot-path increment is
  one lock acquisition and one dict add;
* reading is snapshot-based: :meth:`MetricsRegistry.snapshot` returns a
  plain JSON-able dict, :meth:`MetricsRegistry.to_prometheus` the
  Prometheus text exposition format;
* live objects that already count internally (the LRU caches, the
  streaming admission queue) register *collectors* — callables sampled
  at snapshot time — so their hot paths pay nothing at all.

Instrumentation is on by default and disabled globally with the
``REPRO_OBS=off`` environment variable (or :func:`set_enabled`), in
which case :func:`get_registry` hands out a null registry whose
instruments are shared no-op singletons.
"""

from __future__ import annotations

import bisect
import functools
import math
import os
import threading
import weakref
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "enabled",
    "set_enabled",
    "get_registry",
    "set_registry",
]

#: Default histogram buckets for durations in seconds (upper bounds).
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: One sample contributed by a collector: (kind, name, labels, value)
#: with kind "counter" or "gauge".  Samples with the same (name, labels)
#: are summed across collectors, so many live objects can feed one metric.
Sample = tuple[str, str, dict, float]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    """Canonical (sorted, stringified) form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@functools.lru_cache(maxsize=65536)
def _label_str(key: LabelKey) -> str:
    """The label set as it appears inside Prometheus braces (or '').

    Cached: label sets are low-cardinality by design and every snapshot
    re-renders all of them, so the escape/join work is paid once per
    distinct set, not once per sample per snapshot.
    """
    return ",".join(f'{k}="{_escape(v)}"' for k, v in key)


#: Rendered label strings keyed by a sample's raw ``labels.items()``
#: tuple, *before* canonical sorting — collectors emit label dicts built
#: at a fixed code site, so the insertion-order tuple is a stable key
#: and the sort/stringify in :func:`_label_key` is skipped entirely on
#: the snapshot hot path.  Bounded defensively; cleared on overflow.
_SAMPLE_LABEL_CACHE: dict = {}


def _sample_label_str(labels: dict) -> str:
    if not labels:
        return ""
    try:
        key = tuple(labels.items())
        cached = _SAMPLE_LABEL_CACHE.get(key)
    except TypeError:  # unhashable label value: render uncached
        return _label_str(_label_key(labels))
    if cached is None:
        if len(_SAMPLE_LABEL_CACHE) > 8192:
            _SAMPLE_LABEL_CACHE.clear()
        cached = _label_str(_label_key(labels))
        _SAMPLE_LABEL_CACHE[key] = cached
    return cached


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class BoundCounter:
    """A counter pre-bound to one label set: the hot-path handle.

    The handle holds the series' one-element cell directly, so an
    ``inc`` is a lock round-trip and a list-item add — no label-key
    hashing or dict lookups.  Stage timers fire a dozen of these per
    pair evaluation, which is what pushed the cell design.
    """

    __slots__ = ("_cell", "_lock")

    def __init__(self, cell: list, lock: threading.Lock):
        self._cell = cell
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        lock = self._lock
        lock.acquire()
        try:
            self._cell[0] += amount
        finally:
            lock.release()


class BoundGauge:
    """A gauge pre-bound to one label set."""

    __slots__ = ("_cell", "_lock")

    def __init__(self, cell: list, lock: threading.Lock):
        self._cell = cell
        self._lock = lock

    def set(self, value: float) -> None:
        lock = self._lock
        lock.acquire()
        try:
            self._cell[0] = float(value)
        finally:
            lock.release()

    def inc(self, amount: float = 1.0) -> None:
        lock = self._lock
        lock.acquire()
        try:
            self._cell[0] += amount
        finally:
            lock.release()

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Counter:
    """A monotonically increasing sum, optionally labelled.

    Series are stored as one-element list cells so pre-bound handles
    can add in place without re-hashing the label key per increment.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._cells: dict[LabelKey, list] = {}

    def _cell(self, key: LabelKey) -> list:
        cell = self._cells.get(key)
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(key, [0.0])
        return cell

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` to the series selected by ``labels``."""
        cell = self._cell(_label_key(labels))
        with self._lock:
            cell[0] += amount

    def child(self, **labels) -> BoundCounter:
        """A pre-bound handle for hot paths (one lock + cell add per inc)."""
        return BoundCounter(self._cell(_label_key(labels)), self._lock)

    def values(self) -> dict[LabelKey, float]:
        """Current values keyed by canonical label tuple."""
        with self._lock:
            return {key: cell[0] for key, cell in self._cells.items()}


class Gauge:
    """A value that can go up and down (queue depth, cache size)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._cells: dict[LabelKey, list] = {}

    def _cell(self, key: LabelKey) -> list:
        cell = self._cells.get(key)
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(key, [0.0])
        return cell

    def set(self, value: float, **labels) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        cell = self._cell(_label_key(labels))
        with self._lock:
            cell[0] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` to the series selected by ``labels``."""
        cell = self._cell(_label_key(labels))
        with self._lock:
            cell[0] += amount

    def child(self, **labels) -> BoundGauge:
        """A pre-bound handle for hot paths."""
        return BoundGauge(self._cell(_label_key(labels)), self._lock)

    def values(self) -> dict[LabelKey, float]:
        """Current values keyed by canonical label tuple."""
        with self._lock:
            return {key: cell[0] for key, cell in self._cells.items()}


class _HistogramState:
    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class BoundHistogram:
    """A histogram pre-bound to one label set."""

    __slots__ = ("_hist", "_state")

    def __init__(self, hist: "Histogram", state: _HistogramState):
        self._hist = hist
        self._state = state

    def observe(self, value: float) -> None:
        self._hist._observe(self._state, value)


class Histogram:
    """Fixed-bucket histogram with p50/p95/p99 estimation.

    ``buckets`` is an ascending sequence of *upper bounds*; an implicit
    ``+Inf`` bucket catches the overflow.  Quantiles are estimated with
    linear interpolation inside the containing bucket (the same
    assumption ``histogram_quantile`` makes), clamped to the observed
    ``[min, max]`` so degenerate estimates stay inside the data.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Iterable[float] | None = None):
        self.name = name
        self.help = help
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_TIME_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be non-empty and strictly ascending, got {bounds}")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._states: dict[LabelKey, _HistogramState] = {}

    def _state_for(self, key: LabelKey) -> _HistogramState:
        state = self._states.get(key)
        if state is None:
            with self._lock:
                state = self._states.setdefault(key, _HistogramState(len(self.buckets) + 1))
        return state

    def _observe(self, state: _HistogramState, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state.counts[idx] += 1
            state.total += 1
            state.sum += value
            if value < state.min:
                state.min = value
            if value > state.max:
                state.max = value

    def observe(self, value: float, **labels) -> None:
        """Record one observation in the series selected by ``labels``."""
        self._observe(self._state_for(_label_key(labels)), value)

    def child(self, **labels) -> BoundHistogram:
        """A pre-bound handle for hot paths."""
        return BoundHistogram(self, self._state_for(_label_key(labels)))

    # ------------------------------------------------------------------
    def quantile(self, q: float, **labels) -> float:
        """Estimated ``q``-quantile (NaN with no observations)."""
        state = self._states.get(_label_key(labels))
        if state is None or state.total == 0:
            return math.nan
        return self._quantile_from(state, q)

    def _quantile_from(self, state: _HistogramState, q: float) -> float:
        target = q * state.total
        cumulative = 0
        for idx, count in enumerate(state.counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                lo = self.buckets[idx - 1] if idx > 0 else min(0.0, state.min)
                hi = self.buckets[idx] if idx < len(self.buckets) else state.max
                frac = (target - cumulative) / count
                estimate = lo + frac * (hi - lo)
                return float(min(max(estimate, state.min), state.max))
            cumulative += count
        return float(state.max)

    def merge_stats(self, stats: dict, **labels) -> None:
        """Fold a snapshot-format stats dict into the series for ``labels``.

        ``stats`` is one entry of :meth:`stats` output (``count``/``sum``/
        ``min``/``max``/``buckets``) — typically a delta shipped back from
        a worker process.  The bucket bounds must match this histogram's;
        a mismatch raises :class:`ValueError` rather than silently
        misfiling observations.
        """
        bounds = tuple(float(le) for le, _ in stats["buckets"] if le != "+Inf")
        if bounds != self.buckets:
            raise ValueError(
                f"histogram {self.name!r} has buckets {self.buckets}, "
                f"cannot merge stats with buckets {bounds}"
            )
        counts = [int(c) for _, c in stats["buckets"]]
        state = self._state_for(_label_key(labels))
        with self._lock:
            for idx, count in enumerate(counts):
                state.counts[idx] += count
            state.total += int(stats["count"])
            state.sum += float(stats["sum"])
            if float(stats["min"]) < state.min:
                state.min = float(stats["min"])
            if float(stats["max"]) > state.max:
                state.max = float(stats["max"])

    def stats(self) -> dict[str, dict]:
        """Per-label-set summary: count/sum/min/max/p50/p95/p99/buckets."""
        with self._lock:
            states = dict(self._states)
        out = {}
        for key, state in states.items():
            if state.total == 0:
                continue
            out[_label_str(key)] = {
                "count": state.total,
                "sum": state.sum,
                "min": state.min,
                "max": state.max,
                "p50": self._quantile_from(state, 0.50),
                "p95": self._quantile_from(state, 0.95),
                "p99": self._quantile_from(state, 0.99),
                "buckets": [
                    [("+Inf" if i == len(self.buckets) else self.buckets[i]), state.counts[i]]
                    for i in range(len(state.counts))
                ],
            }
        return out


# ----------------------------------------------------------------------
# Null instruments: the REPRO_OBS=off fast path.
# ----------------------------------------------------------------------
class _NullInstrument:
    """Shared no-op stand-in for every instrument and bound child."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def merge_stats(self, stats: dict, **labels) -> None:
        pass

    def child(self, **labels) -> "_NullInstrument":
        return self

    def values(self) -> dict:
        return {}

    def stats(self) -> dict:
        return {}

    def quantile(self, q: float, **labels) -> float:
        return math.nan


_NULL = _NullInstrument()


class NullRegistry:
    """Registry handed out when observability is disabled: all no-ops."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL

    def histogram(self, name: str, help: str = "", buckets=None) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL

    def register_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """Ignored: null registries never sample collectors."""

    def value(self, name: str) -> dict[str, float]:
        """Always empty."""
        return {}

    def snapshot(self) -> dict:
        """Always empty."""
        return {}

    def to_prometheus(self) -> str:
        """Always empty."""
        return ""

    def reset(self) -> None:
        """Nothing to drop."""


class MetricsRegistry:
    """Thread-safe home for every metric the pipeline emits.

    Instruments are created (or fetched — creation is idempotent) with
    :meth:`counter` / :meth:`gauge` / :meth:`histogram`; live objects
    contribute snapshot-time samples with :meth:`register_collector`.
    Collectors passed as bound methods are held through weak references,
    so registering a per-instance collector does not leak the instance.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list = []

    # ------------------------------------------------------------------
    def _instrument(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Create (or fetch) the counter called ``name``."""
        return self._instrument(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Create (or fetch) the gauge called ``name``."""
        return self._instrument(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] | None = None
    ) -> Histogram:
        """Create (or fetch) the histogram called ``name``."""
        return self._instrument(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    def register_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """Register a snapshot-time sample source (weakly, if a method).

        Idempotent for bound methods: re-registering the same method (an
        object re-binding its instruments after a registry swap) does not
        duplicate its samples — collector samples are *summed*.
        """
        if hasattr(fn, "__self__"):
            ref = weakref.WeakMethod(fn)
            with self._lock:
                if ref in self._collectors:
                    return
                self._collectors.append(ref)
        else:
            with self._lock:
                self._collectors.append(lambda: fn)

    def _collected(self) -> dict[str, dict]:
        """Samples from live collectors, summed by (kind, name, labels)."""
        with self._lock:
            refs = list(self._collectors)
        merged: dict[str, dict] = {"counter": {}, "gauge": {}}
        dead = []
        for ref in refs:
            fn = ref()
            if fn is None:
                dead.append(ref)
                continue
            for kind, name, labels, value in fn() or ():
                bucket = merged.setdefault(kind, {})
                series = bucket.setdefault(name, {})
                key = _sample_label_str(labels)
                series[key] = series.get(key, 0.0) + float(value)
        if dead:
            with self._lock:
                self._collectors = [r for r in self._collectors if r not in dead]
        return merged

    # ------------------------------------------------------------------
    def value(self, name: str) -> dict[str, float]:
        """Current values of one counter/gauge, keyed by label string."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return {}
        return {_label_str(k): v for k, v in metric.values().items()}

    def snapshot(self) -> dict:
        """Everything, as a JSON-serializable dict (collectors included)."""
        collected = self._collected()
        counters: dict[str, dict] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        with self._lock:
            metrics = dict(self._metrics)
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Histogram):
                stats = metric.stats()
                if stats:
                    histograms[name] = stats
            else:
                series = {_label_str(k): v for k, v in metric.values().items()}
                if series:
                    (counters if isinstance(metric, Counter) else gauges)[name] = series
        for target, kind in ((counters, "counter"), (gauges, "gauge")):
            for name, series in collected.get(kind, {}).items():
                merged = target.setdefault(name, {})
                for key, value in series.items():
                    merged[key] = merged.get(key, 0.0) + value
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_prometheus(self) -> str:
        """The snapshot in the Prometheus text exposition format."""
        snap = self.snapshot()
        lines: list[str] = []
        helps = {name: m.help for name, m in self._metrics.items()}

        def emit_scalar(kind: str, name: str, series: dict) -> None:
            if helps.get(name):
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(series):
                label = f"{{{key}}}" if key else ""
                lines.append(f"{name}{label} {_format_value(series[key])}")

        for name in sorted(snap["counters"]):
            emit_scalar("counter", name, snap["counters"][name])
        for name in sorted(snap["gauges"]):
            emit_scalar("gauge", name, snap["gauges"][name])
        for name in sorted(snap["histograms"]):
            if helps.get(name):
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} histogram")
            for key in sorted(snap["histograms"][name]):
                stats = snap["histograms"][name][key]
                cumulative = 0
                for le, count in stats["buckets"]:
                    cumulative += count
                    le_str = "+Inf" if le == "+Inf" else f"{le:g}"
                    label = f'{key},le="{le_str}"' if key else f'le="{le_str}"'
                    lines.append(f"{name}_bucket{{{label}}} {cumulative}")
                suffix = f"{{{key}}}" if key else ""
                lines.append(f"{name}_sum{suffix} {_format_value(stats['sum'])}")
                lines.append(f"{name}_count{suffix} {stats['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric and collector (tests and demos)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()

    # A registry crossing a process boundary restarts empty: locks do not
    # pickle, and worker-side metrics flow back explicitly as delta
    # snapshots (see repro.obs.aggregate) rather than by dragging state
    # through pickles.
    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self.__init__()


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# Global default registry and the REPRO_OBS switch.
# ----------------------------------------------------------------------
def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "on").strip().lower() not in (
        "off", "0", "false", "no", "disabled",
    )


_ENABLED = _env_enabled()
_DEFAULT = MetricsRegistry()
_NULL_REGISTRY = NullRegistry()


def enabled() -> bool:
    """Whether instrumentation is globally enabled (``REPRO_OBS``)."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Override the ``REPRO_OBS`` switch; returns the previous value.

    Components capture their instruments at construction, so the switch
    affects objects built *after* the call (tests build fresh measures).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-wide default registry (null when disabled)."""
    return _DEFAULT if _ENABLED else _NULL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
