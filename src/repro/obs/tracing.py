"""Lightweight hierarchical tracing: span trees, Chrome traces, flamegraphs.

A *span* is one timed region of the pipeline — a pairwise run, one
similarity evaluation, a worker chunk.  Spans nest: entering a span
while another is open on the same thread makes it a child, so a run
produces a forest of trees whose wall/CPU times explain where the
`O(|Tra|·|Tra'|·|R|^2)` work went.

The tracer is thread-aware (per-thread open-span stacks) and bounded
(a deque of the most recent root spans), so it can stay on in serving
loops without growing without bound.  Export paths:

* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` JSON, load
  in ``chrome://tracing`` / Perfetto;
* :meth:`Tracer.flamegraph` — a rendered text flamegraph, spans merged
  by path with inclusive wall time and call counts.

Like the metrics registry, tracing honours ``REPRO_OBS=off``: the span
context manager becomes a shared no-op.
"""

from __future__ import annotations

import functools
import threading
import time
from collections import deque
from typing import Callable

from .registry import enabled

__all__ = [
    "Span",
    "Tracer",
    "trace_span",
    "traced",
    "get_tracer",
    "set_tracer",
]


class Span:
    """One completed (or open) timed region."""

    __slots__ = ("name", "attrs", "children", "start_s", "wall_s", "cpu_s", "tid")

    def __init__(self, name: str, attrs: dict, start_s: float, tid: int):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start_s = start_s  # perf_counter offset; relative, not epoch
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.tid = tid

    def to_dict(self) -> dict:
        """JSON-serializable form of the span subtree."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s:.6f}s, children={len(self.children)})"


class _SpanContext:
    """Context manager that opens/closes one span on the current thread."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span = None
        self._cpu0 = 0.0

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        self._cpu0 = time.thread_time()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        cpu = time.thread_time() - self._cpu0
        self._tracer._close(self._span, cpu)
        return None


class _NullSpanContext:
    """Shared no-op span for REPRO_OBS=off and disabled tracers."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    wall_s = 0.0
    cpu_s = 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Collects span trees per thread, keeping the last ``max_roots`` roots."""

    def __init__(self, max_roots: int = 256):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_roots)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span as a context manager: ``with tracer.span("x"): ...``"""
        return _SpanContext(self, name, attrs)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, attrs: dict) -> Span:
        span = Span(name, attrs, time.perf_counter(), threading.get_ident())
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span, cpu_s: float) -> None:
        span.wall_s = time.perf_counter() - span.start_s
        span.cpu_s = cpu_s
        stack = self._stack()
        # Tolerate out-of-order exits (generator teardown) by unwinding.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        """Forget every recorded root span."""
        with self._lock:
            self._roots.clear()

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> list[dict]:
        """Chrome ``trace_event`` JSON (list of complete "X" events)."""
        events: list[dict] = []
        roots = self.roots()
        if not roots:
            return events
        t0 = min(r.start_s for r in roots)

        def walk(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start_s - t0) * 1e6,
                    "dur": span.wall_s * 1e6,
                    "pid": 1,
                    "tid": span.tid,
                    "args": dict(span.attrs, cpu_ms=round(span.cpu_s * 1e3, 3)),
                }
            )
            for child in span.children:
                walk(child)

        for root in roots:
            walk(root)
        return events

    def flamegraph(self, width: int = 72) -> str:
        """Text flamegraph: spans merged by path, bars scaled to root time."""
        roots = self.roots()
        if not roots:
            return "(no spans recorded)"
        # Merge the forest by span-name path.
        merged: dict[str, dict] = {}

        def fold(span: Span, into: dict) -> None:
            node = into.setdefault(
                span.name, {"wall": 0.0, "cpu": 0.0, "count": 0, "children": {}}
            )
            node["wall"] += span.wall_s
            node["cpu"] += span.cpu_s
            node["count"] += 1
            for child in span.children:
                fold(child, node["children"])

        for root in roots:
            fold(root, merged)
        total = sum(node["wall"] for node in merged.values()) or 1.0
        lines: list[str] = []

        def render(name: str, node: dict, depth: int) -> None:
            bar = max(1, int(round(width * node["wall"] / total)))
            lines.append(
                f"{'  ' * depth}{'█' * bar} {name}  "
                f"{node['wall'] * 1e3:.2f} ms  (x{node['count']}, cpu {node['cpu'] * 1e3:.2f} ms)"
            )
            for child_name in sorted(
                node["children"], key=lambda n: -node["children"][n]["wall"]
            ):
                render(child_name, node["children"][child_name], depth + 1)

        for name in sorted(merged, key=lambda n: -merged[n]["wall"]):
            render(name, merged[name], 0)
        return "\n".join(lines)

    # Tracers may ride along on objects shipped to process workers; the
    # worker restarts with an empty tracer (locks do not pickle).
    def __getstate__(self) -> dict:
        return {"maxlen": self._roots.maxlen}

    def __setstate__(self, state: dict) -> None:
        self.__init__(max_roots=state.get("maxlen") or 256)


_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _DEFAULT_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide default tracer; returns the previous one."""
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer
    return previous


def trace_span(name: str, **attrs):
    """Open a span on the default tracer (no-op when REPRO_OBS=off)."""
    if not enabled():
        return _NULL_SPAN
    return _DEFAULT_TRACER.span(name, **attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator form: ``@traced("stage")`` or bare ``@traced()``."""

    def wrap(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            with trace_span(span_name):
                return fn(*args, **kwargs)

        return inner

    return wrap
