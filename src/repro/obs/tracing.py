"""Lightweight hierarchical tracing: span trees, Chrome traces, flamegraphs.

A *span* is one timed region of the pipeline — a pairwise run, one
similarity evaluation, a worker chunk.  Spans nest: entering a span
while another is open on the same thread makes it a child, so a run
produces a forest of trees whose wall/CPU times explain where the
`O(|Tra|·|Tra'|·|R|^2)` work went.

The tracer is thread-aware (per-thread open-span stacks) and bounded
(a deque of the most recent root spans), so it can stay on in serving
loops without growing without bound.  Export paths:

* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` JSON, load
  in ``chrome://tracing`` / Perfetto;
* :meth:`Tracer.flamegraph` — a rendered text flamegraph, spans merged
  by path with inclusive wall time and call counts.

Like the metrics registry, tracing honours ``REPRO_OBS=off``: the span
context manager becomes a shared no-op.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from collections import deque
from typing import Callable

from .registry import enabled

__all__ = [
    "Span",
    "Tracer",
    "adopt_span",
    "current_span",
    "get_tracer",
    "new_trace_id",
    "set_tracer",
    "span_from_payload",
    "span_payload",
    "spans_to_chrome",
    "trace_span",
    "traced",
]

_SPAN_IDS = itertools.count(1)

# Cached per-process constants: span creation sits inside per-pair hot
# loops, where an os.getpid() and time.time() call per span is real money.
# epoch starts are reconstructed as _EPOCH_OFFSET + start_s, trading a
# syscall per span for the (sub-ms) one-time offset between the clocks.
_PID = os.getpid()
_EPOCH_OFFSET = time.time() - time.perf_counter()


def _refresh_pid() -> None:
    global _PID
    _PID = os.getpid()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_refresh_pid)


def new_span_id() -> str:
    """A span id unique across processes (pid-qualified counter)."""
    return f"{_PID:x}-{next(_SPAN_IDS):x}"


def new_trace_id() -> str:
    """A random 64-bit trace id (hex)."""
    return os.urandom(8).hex()


class Span:
    """One completed (or open) timed region."""

    __slots__ = (
        "name", "attrs", "children", "start_s", "wall_s", "cpu_s",
        "tid", "pid", "_epoch_s", "_span_id",
    )

    def __init__(
        self,
        name: str,
        attrs: dict,
        start_s: float,
        tid: int,
        *,
        pid: int | None = None,
        epoch_s: float | None = None,
        span_id: str | None = None,
    ):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start_s = start_s  # perf_counter offset; relative, not epoch
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.tid = tid
        self.pid = _PID if pid is None else pid
        # epoch_s and span_id materialize lazily on first access: most
        # spans are leaf spans that are only ever aggregated (flamegraphs,
        # stage timings), and never need either.
        self._epoch_s = epoch_s
        self._span_id = span_id

    @property
    def epoch_s(self) -> float:
        """Wall-clock start: the cross-process anchor (perf_counter
        offsets are incomparable between processes; epoch seconds are
        not)."""
        if self._epoch_s is None:
            self._epoch_s = _EPOCH_OFFSET + self.start_s
        return self._epoch_s

    @epoch_s.setter
    def epoch_s(self, value: float) -> None:
        self._epoch_s = value

    @property
    def span_id(self) -> str:
        if self._span_id is None:
            self._span_id = new_span_id()
        return self._span_id

    @span_id.setter
    def span_id(self, value: str) -> None:
        self._span_id = value

    def finish(self, cpu_s: float = 0.0) -> "Span":
        """Close a manually-managed span (one not opened via a tracer)."""
        self.wall_s = time.perf_counter() - self.start_s
        self.cpu_s = cpu_s
        return self

    def to_dict(self) -> dict:
        """JSON-serializable form of the span subtree."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "span_id": self.span_id,
            "epoch_s": self.epoch_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
            "tid": self.tid,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s:.6f}s, children={len(self.children)})"


class _SpanContext:
    """Context manager that opens/closes one span on the current thread.

    The enter/exit paths are fused (one stack fetch each, reused across
    both) and CPU self-time is only sampled for root spans: leaf spans
    open inside per-pair hot loops where two ``thread_time`` syscalls
    per span are measurable, and their CPU is attributed to the root
    anyway.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_cpu0", "_stack")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span = None
        self._cpu0 = -1.0
        self._stack = None

    def __enter__(self) -> Span:
        stack = self._stack = self._tracer._stack()
        span = self._span = Span(
            self._name, self._attrs, time.perf_counter(), threading.get_ident()
        )
        if stack:
            stack[-1].children.append(span)
            self._cpu0 = -1.0
        else:
            self._cpu0 = time.thread_time()
        stack.append(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        span.wall_s = time.perf_counter() - span.start_s
        if self._cpu0 >= 0.0:
            span.cpu_s = time.thread_time() - self._cpu0
        stack = self._stack
        # Tolerate out-of-order exits (generator teardown) by unwinding.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:
            tracer = self._tracer
            with tracer._lock:
                tracer._roots.append(span)
        return None


class _NullSpanContext:
    """Shared no-op span for REPRO_OBS=off and disabled tracers."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    start_s = 0.0
    wall_s = 0.0
    cpu_s = 0.0
    epoch_s = 0.0
    pid = 0
    tid = 0
    span_id = ""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Collects span trees per thread, keeping the last ``max_roots`` roots."""

    def __init__(self, max_roots: int = 256):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_roots)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span as a context manager: ``with tracer.span("x"): ...``"""
        return _SpanContext(self, name, attrs)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, attrs: dict) -> Span:
        span = Span(name, attrs, time.perf_counter(), threading.get_ident())
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span, cpu_s: float) -> None:
        span.wall_s = time.perf_counter() - span.start_s
        span.cpu_s = cpu_s
        stack = self._stack()
        # Tolerate out-of-order exits (generator teardown) by unwinding.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        """Forget every recorded root span."""
        with self._lock:
            self._roots.clear()

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> list[dict]:
        """Chrome ``trace_event`` JSON (list of complete "X" events)."""
        return spans_to_chrome(self.roots())

    def flamegraph(self, width: int = 72) -> str:
        """Text flamegraph: spans merged by path, bars scaled to root time."""
        roots = self.roots()
        if not roots:
            return "(no spans recorded)"
        # Merge the forest by span-name path.
        merged: dict[str, dict] = {}

        def fold(span: Span, into: dict) -> None:
            node = into.setdefault(
                span.name, {"wall": 0.0, "cpu": 0.0, "count": 0, "children": {}}
            )
            node["wall"] += span.wall_s
            node["cpu"] += span.cpu_s
            node["count"] += 1
            for child in span.children:
                fold(child, node["children"])

        for root in roots:
            fold(root, merged)
        total = sum(node["wall"] for node in merged.values()) or 1.0
        lines: list[str] = []

        def render(name: str, node: dict, depth: int) -> None:
            bar = max(1, int(round(width * node["wall"] / total)))
            lines.append(
                f"{'  ' * depth}{'█' * bar} {name}  "
                f"{node['wall'] * 1e3:.2f} ms  (x{node['count']}, cpu {node['cpu'] * 1e3:.2f} ms)"
            )
            for child_name in sorted(
                node["children"], key=lambda n: -node["children"][n]["wall"]
            ):
                render(child_name, node["children"][child_name], depth + 1)

        for name in sorted(merged, key=lambda n: -merged[n]["wall"]):
            render(name, merged[name], 0)
        return "\n".join(lines)

    # Tracers may ride along on objects shipped to process workers; the
    # worker restarts with an empty tracer (locks do not pickle).
    def __getstate__(self) -> dict:
        return {"maxlen": self._roots.maxlen}

    def __setstate__(self, state: dict) -> None:
        self.__init__(max_roots=state.get("maxlen") or 256)


# ----------------------------------------------------------------------
# Cross-process stitching: payloads, adoption, Chrome export.
# ----------------------------------------------------------------------
def spans_to_chrome(
    roots, trace_id: str | None = None, parent_ids: dict | None = None
) -> list[dict]:
    """Chrome ``trace_event`` "X" events for a span forest.

    Timestamps are epoch-anchored (relative to the earliest span in the
    forest), so spans recorded in different processes land on one
    comparable timeline; each event carries its real ``pid`` plus
    ``span_id``/``parent_span_id`` args so stitched traces keep their
    causal links even where Chrome's pid/tid lanes cannot nest them.
    Events are sorted by timestamp (parents before equal-ts children).
    """
    roots = list(roots)
    roots = [r for r in roots if isinstance(r, Span)]
    if not roots:
        return []
    t0 = min(_earliest_epoch(r) for r in roots)
    events: list[dict] = []

    def walk(span: Span, parent_id: str | None) -> None:
        args = dict(span.attrs, cpu_ms=round(span.cpu_s * 1e3, 3))
        args["span_id"] = span.span_id
        if parent_id is not None:
            args["parent_span_id"] = parent_id
        if trace_id is not None:
            args["trace_id"] = trace_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": max(0.0, (span.epoch_s - t0) * 1e6),
                "dur": max(0.0, span.wall_s * 1e6),
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
        for child in span.children:
            walk(child, span.span_id)

    parent_ids = parent_ids or {}
    for root in roots:
        walk(root, parent_ids.get(root.span_id))
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    return events


def _earliest_epoch(span: Span) -> float:
    epoch = span.epoch_s
    for child in span.children:
        epoch = min(epoch, _earliest_epoch(child))
    return epoch


def _compact_leaves(span: Span) -> Span:
    """Collapse runs of same-name childless children into summary spans.

    A worker query opens one leaf span per pair evaluation — dozens to
    hundreds of children that cost real time to serialize, ship and
    restitch, and that drown the cross-process trace in repetition.
    Consecutive childless children sharing a name are merged into one
    span carrying ``count`` and the summed wall time (serial leaves
    never overlap, so the merged extent stays inside the parent).
    Returns a shallow copy; the local tracer keeps full detail.
    """
    compacted = Span(
        span.name, span.attrs, span.start_s, span.tid,
        pid=span.pid, epoch_s=span.epoch_s, span_id=span.span_id,
    )
    compacted.wall_s = span.wall_s
    compacted.cpu_s = span.cpu_s
    run: Span | None = None
    for child in span.children:
        if not child.children:
            if run is not None and run.name == child.name:
                run.attrs["count"] += 1
                run.wall_s += child.wall_s
                run.cpu_s += child.cpu_s
                continue
            run = Span(
                child.name, dict(child.attrs), child.start_s, child.tid,
                pid=child.pid, epoch_s=child.epoch_s, span_id=child.span_id,
            )
            run.attrs["count"] = 1
            run.wall_s = child.wall_s
            run.cpu_s = child.cpu_s
            compacted.children.append(run)
        else:
            run = None
            compacted.children.append(_compact_leaves(child))
    return compacted


def span_payload(
    span,
    trace_id: str | None = None,
    parent_span_id: str | None = None,
    compact: bool = True,
) -> dict | None:
    """Serialize a completed span subtree for the wire.

    ``trace_id``/``parent_span_id`` carry the propagated trace context:
    the parent stitches the reconstructed subtree under the span whose
    id is ``parent_span_id``.  Same-name leaf runs are compacted into
    summary spans unless ``compact=False`` (see :func:`_compact_leaves`).
    Returns ``None`` for null spans.
    """
    if not isinstance(span, Span):
        return None
    if compact:
        span = _compact_leaves(span)
    return {
        "trace_id": trace_id,
        "parent_span_id": parent_span_id,
        "span": span.to_dict(),
    }


def span_from_payload(payload: dict) -> Span | None:
    """Rebuild the :class:`Span` tree from a :func:`span_payload` dict."""
    if not payload or "span" not in payload:
        return None
    return _span_from_dict(payload["span"])


def _span_from_dict(data: dict) -> Span:
    span = Span(
        str(data.get("name", "")),
        dict(data.get("attrs") or {}),
        0.0,
        int(data.get("tid", 0)),
        pid=int(data.get("pid", 0)),
        epoch_s=float(data.get("epoch_s", 0.0)),
        span_id=str(data.get("span_id", "")),
    )
    span.wall_s = float(data.get("wall_s", 0.0))
    span.cpu_s = float(data.get("cpu_s", 0.0))
    span.children = [_span_from_dict(c) for c in data.get("children") or ()]
    return span


def current_span(tracer: "Tracer | None" = None) -> Span | None:
    """The innermost span open on the current thread, if any."""
    tracer = tracer or _DEFAULT_TRACER
    stack = tracer._stack()
    return stack[-1] if stack else None


def adopt_span(span_or_payload, tracer: "Tracer | None" = None) -> Span | None:
    """Attach a remote span subtree to the local trace.

    If a span is open on the current thread it becomes the parent
    (worker chunks stitch under the dispatching span); otherwise the
    subtree is recorded as a root of its own.
    """
    tracer = tracer or _DEFAULT_TRACER
    span = (
        span_from_payload(span_or_payload)
        if isinstance(span_or_payload, dict)
        else span_or_payload
    )
    if not isinstance(span, Span):
        return None
    parent = current_span(tracer)
    if parent is not None:
        parent.children.append(span)
    else:
        with tracer._lock:
            tracer._roots.append(span)
    return span


_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _DEFAULT_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide default tracer; returns the previous one."""
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer
    return previous


def trace_span(name: str, **attrs):
    """Open a span on the default tracer (no-op when REPRO_OBS=off)."""
    if not enabled():
        return _NULL_SPAN
    return _DEFAULT_TRACER.span(name, **attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator form: ``@traced("stage")`` or bare ``@traced()``."""

    def wrap(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            with trace_span(span_name):
                return fn(*args, **kwargs)

        return inner

    return wrap
