"""Declarative SLOs evaluated as multi-window burn rates over snapshots.

An :class:`SLO` names a good/bad-event signal derivable from a registry
snapshot — a latency histogram with a threshold, a bad/total counter
ratio, or the cluster-coverage histogram — plus an objective (the
fraction of events that must be good).  :class:`SLOTracker` samples a
live registry over time and evaluates each SLO over a *fast* and a
*slow* trailing window, reporting burn rates (observed error rate over
the error budget ``1 - objective``):

* burn rate 1.0 — the budget is being consumed exactly at the rate that
  exhausts it at the end of the (implied) compliance period;
* the tracker pages when the fast window burns hot *and* the slow
  window confirms it (the standard multiwindow rule, collapsed to two
  windows), and warns on a sustained lower burn.

Everything operates on plain snapshot dicts, so the same math serves
the live exporter (``/slo``), `repro obs slo` on a saved snapshot, and
:class:`ServiceHealth` annotation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .registry import get_registry
from .aggregate import parse_label_str

__all__ = ["SLO", "SLOTracker", "default_slos"]


@dataclass(frozen=True)
class SLO:
    """One service-level objective over snapshot-derivable events.

    ``signal`` selects the extraction rule:

    * ``"latency"`` — events are observations of ``histogram``; bad
      events landed in buckets whose upper bound exceeds ``threshold``
      (seconds).  Threshold resolution is bucket-granular, so pick a
      threshold that is a bucket bound.
    * ``"error_ratio"`` — bad events are the ``bad_counter`` series
      matching ``bad_labels`` (subset match); total events the
      ``total_counter`` series matching ``total_labels``.
    * ``"coverage"`` — events are observations of ``histogram`` (a
      fraction-valued histogram such as ``repro_cluster_coverage``);
      bad events landed in buckets strictly below ``threshold``.
    """

    name: str
    objective: float  # fraction of events that must be good, e.g. 0.99
    signal: str  # "latency" | "error_ratio" | "coverage"
    histogram: str | None = None
    threshold: float | None = None
    bad_counter: str | None = None
    bad_labels: dict = field(default_factory=dict)
    total_counter: str | None = None
    total_labels: dict = field(default_factory=dict)
    description: str = ""

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.signal in ("latency", "coverage"):
            if not self.histogram or self.threshold is None:
                raise ValueError(f"{self.signal!r} SLO needs histogram and threshold")
        elif self.signal == "error_ratio":
            if not self.bad_counter or not self.total_counter:
                raise ValueError("'error_ratio' SLO needs bad_counter and total_counter")
        else:
            raise ValueError(f"unknown SLO signal {self.signal!r}")

    # ------------------------------------------------------------------
    def totals(self, snapshot: dict) -> tuple[float, float]:
        """Cumulative ``(bad, total)`` event counts in ``snapshot``."""
        if self.signal in ("latency", "coverage"):
            return self._histogram_totals(snapshot)
        return self._counter_totals(snapshot)

    def _histogram_totals(self, snapshot: dict) -> tuple[float, float]:
        series = (snapshot.get("histograms") or {}).get(self.histogram) or {}
        bad = total = 0.0
        for stats in series.values():
            total += int(stats["count"])
            for le, count in stats["buckets"]:
                bound = float("inf") if le == "+Inf" else float(le)
                if self.signal == "latency":
                    # an observation is bad when it could exceed the
                    # threshold: its bucket's upper bound lies above it
                    if bound > self.threshold:
                        bad += int(count)
                elif bound < self.threshold:
                    bad += int(count)
        return bad, total

    def _counter_totals(self, snapshot: dict) -> tuple[float, float]:
        counters = snapshot.get("counters") or {}

        def matching(name: str, want: dict) -> float:
            out = 0.0
            for key, value in (counters.get(name) or {}).items():
                labels = parse_label_str(key)
                if all(labels.get(k) == str(v) for k, v in want.items()):
                    out += float(value)
            return out

        bad = matching(self.bad_counter, self.bad_labels)
        total = matching(self.total_counter, self.total_labels)
        return bad, max(bad, total)


def default_slos() -> tuple[SLO, ...]:
    """The stock SLO set for the link/serving path."""
    return (
        SLO(
            name="link-latency-p99",
            objective=0.99,
            signal="latency",
            histogram="repro_matcher_query_seconds",
            threshold=0.5,
            description="99% of matcher queries complete within 500 ms",
        ),
        SLO(
            name="chunk-error-rate",
            objective=0.999,
            signal="error_ratio",
            bad_counter="repro_supervisor_chunks_total",
            bad_labels={"event": "shed"},
            total_counter="repro_supervisor_chunks_total",
            total_labels={"event": "queued"},
            description="99.9% of dispatched chunks complete without shedding",
        ),
        SLO(
            name="cluster-coverage",
            objective=0.999,
            signal="coverage",
            histogram="repro_cluster_coverage",
            threshold=1.0,
            description="99.9% of cluster queries consult the full gallery",
        ),
    )


class SLOTracker:
    """Samples a registry over time and evaluates burn rates per SLO.

    Call :meth:`sample` periodically (the exporter does so on every
    ``/slo`` request, benches once per repeat); :meth:`evaluate`
    re-samples and reports per-SLO state.  With fewer than two samples
    in a window, the window falls back to the lifetime totals — so a
    one-shot evaluation of a static snapshot still yields a meaningful
    (whole-history) burn rate.
    """

    def __init__(
        self,
        registry=None,
        slos: tuple = (),
        fast_window_s: float = 300.0,
        slow_window_s: float = 3600.0,
        page_burn: float = 14.4,
        warn_burn: float = 6.0,
        clock=time.monotonic,
        max_samples: int = 4096,
    ):
        self._registry = registry if registry is not None else get_registry()
        self.slos = tuple(slos) or default_slos()
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.page_burn = float(page_burn)
        self.warn_burn = float(warn_burn)
        self._clock = clock
        self._max_samples = int(max_samples)
        self._lock = threading.Lock()
        self._samples: list[tuple[float, dict]] = []

    # ------------------------------------------------------------------
    def sample(self, snapshot: dict | None = None) -> None:
        """Record one timestamped (bad, total) observation per SLO."""
        snap = snapshot if snapshot is not None else self._registry.snapshot()
        point = {slo.name: slo.totals(snap) for slo in self.slos}
        with self._lock:
            self._samples.append((self._clock(), point))
            if len(self._samples) > self._max_samples:
                # Thin the oldest half rather than sliding: keeps long
                # slow-window anchors while bounding memory.
                half = self._samples[: len(self._samples) // 2 : 2]
                self._samples = half + self._samples[len(self._samples) // 2 :]

    def evaluate(self, snapshot: dict | None = None) -> dict:
        """Sample now and report burn state per SLO (JSON-able)."""
        self.sample(snapshot)
        now = self._clock()
        with self._lock:
            samples = list(self._samples)
        out = []
        for slo in self.slos:
            budget = 1.0 - slo.objective
            windows = {}
            for label, window_s in (
                ("fast", self.fast_window_s),
                ("slow", self.slow_window_s),
            ):
                totals = self._window_totals_from(samples, slo.name, window_s, now)
                bad, total = totals if totals else (0.0, 0.0)
                rate = (bad / total) if total > 0 else 0.0
                windows[label] = {
                    "window_s": window_s,
                    "bad": bad,
                    "total": total,
                    "error_rate": rate,
                    "burn_rate": rate / budget if budget > 0 else 0.0,
                }
            fast, slow = windows["fast"], windows["slow"]
            if slow["total"] <= 0:
                state = "no_data"
            elif fast["burn_rate"] >= self.page_burn and slow["burn_rate"] >= 1.0:
                state = "page"
            elif max(fast["burn_rate"], slow["burn_rate"]) >= self.warn_burn:
                state = "warn"
            else:
                state = "ok"
            out.append(
                {
                    "name": slo.name,
                    "description": slo.description,
                    "signal": slo.signal,
                    "objective": slo.objective,
                    "error_budget": budget,
                    "fast": fast,
                    "slow": slow,
                    "state": state,
                }
            )
        return {"slos": out, "sampled": len(samples)}

    @staticmethod
    def _window_totals_from(samples, name, window_s, now):
        """(bad, total) accumulated inside the trailing window, if known."""
        cutoff = now - window_s
        anchor = latest = None
        for ts, point in samples:
            if name not in point:
                continue
            if ts <= cutoff:
                anchor = point[name]
            latest = point[name]
        if latest is None:
            return None
        if anchor is None:
            return latest  # window predates sampling: lifetime totals
        bad = latest[0] - anchor[0]
        total = latest[1] - anchor[1]
        if bad < 0 or total < 0:  # registry reset mid-window
            return latest
        return bad, total

    # ------------------------------------------------------------------
    def annotate(self, health) -> None:
        """Attach the current evaluation to a ServiceHealth-like object."""
        if hasattr(health, "slo"):
            health.slo = self.evaluate()

    @staticmethod
    def evaluate_snapshot(snapshot: dict, slos: tuple = ()) -> dict:
        """One-shot evaluation of a static snapshot (whole-history burn)."""
        tracker = SLOTracker(registry=_StaticRegistry(snapshot), slos=slos)
        return tracker.evaluate()


class _StaticRegistry:
    """Adapter: a frozen snapshot posing as a live registry."""

    enabled = True

    def __init__(self, snapshot: dict):
        self._snapshot = snapshot or {}

    def snapshot(self) -> dict:
        return self._snapshot
