"""Associative-mergeable metric snapshots: merge, delta, fold.

A :meth:`MetricsRegistry.snapshot` is a plain dict, which makes it the
natural wire format for cross-process telemetry — but only if snapshots
can be *combined*.  This module supplies the algebra:

* :func:`merge_snapshots` — an associative, commutative merge of two
  snapshots (counters and gauges sum; histograms sum bucket-wise and
  re-derive their quantiles), so fleet-wide series are a fold over
  per-process snapshots in any order;
* :func:`snapshot_delta` — the increment between two cumulative
  snapshots from the *same* process, with counter-reset detection: a
  restarted worker restarts from zero, so its next delta is its whole
  new snapshot and nothing is ever double-counted;
* :class:`DeltaSource` — the worker-side adapter that turns a live
  registry into a stream of such deltas (piggybacked on query replies
  and heartbeats);
* :func:`merge_into_registry` — the parent-side fold of a snapshot into
  a live registry under extra labels (``process="worker"``, shard and
  replica ids), so the operator-visible series finally describe the
  whole fleet rather than one process.

Gauges are point-in-time values, so :class:`DeltaSource` excludes them
from deltas; :func:`merge_into_registry` writes gauges under the extra
labels as distinct per-process series instead of summing them.
"""

from __future__ import annotations

import math
import re

from .registry import MetricsRegistry, _label_key, _label_str

__all__ = [
    "DeltaSource",
    "hist_stats_quantile",
    "merge_into_registry",
    "merge_snapshots",
    "parse_label_str",
    "snapshot_delta",
    "snapshot_is_empty",
]

_SECTIONS = ("counters", "gauges", "histograms")

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_label_str(label_str: str) -> dict[str, str]:
    """Invert ``_label_str``: ``'k="v",k2="v2"'`` back to a dict."""
    if not label_str:
        return {}
    out: dict[str, str] = {}
    for match in _LABEL_RE.finditer(label_str):
        value = match.group(2)
        value = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        out[match.group(1)] = value
    return out


def _relabel(label_str: str, extra: dict[str, str] | None) -> str:
    """Canonical label string with ``extra`` labels merged in (extra wins)."""
    if not extra:
        return label_str
    labels = parse_label_str(label_str)
    labels.update(extra)
    return _label_str(_label_key(labels))


def snapshot_is_empty(snapshot: dict | None) -> bool:
    """True when the snapshot carries no series at all."""
    return not snapshot or not any(snapshot.get(s) for s in _SECTIONS)


# ----------------------------------------------------------------------
# Histogram stats algebra
# ----------------------------------------------------------------------
def hist_stats_quantile(stats: dict, q: float) -> float:
    """Bucket-interpolated quantile of a stats dict (mirrors the registry).

    Same estimator as :meth:`Histogram._quantile_from` — linear
    interpolation inside the containing bucket, clamped to the observed
    ``[min, max]`` — but computed from the serialized form, so merged
    stats can re-derive p50/p95/p99 without a live instrument.
    """
    total = int(stats["count"])
    if total == 0:
        return math.nan
    bounds = [float(le) for le, _ in stats["buckets"] if le != "+Inf"]
    counts = [int(c) for _, c in stats["buckets"]]
    mn, mx = float(stats["min"]), float(stats["max"])
    target = q * total
    cumulative = 0
    for idx, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= target:
            lo = bounds[idx - 1] if idx > 0 else min(0.0, mn)
            hi = bounds[idx] if idx < len(bounds) else mx
            frac = (target - cumulative) / count
            estimate = lo + frac * (hi - lo)
            return float(min(max(estimate, mn), mx))
        cumulative += count
    return mx


def _with_quantiles(stats: dict) -> dict:
    stats["p50"] = hist_stats_quantile(stats, 0.50)
    stats["p95"] = hist_stats_quantile(stats, 0.95)
    stats["p99"] = hist_stats_quantile(stats, 0.99)
    return stats


def _bucket_bounds(stats: dict) -> tuple:
    return tuple(le for le, _ in stats["buckets"])


def _merge_hist_stats(a: dict, b: dict) -> dict:
    """Sum two stats dicts bucket-wise; quantiles are re-derived."""
    if _bucket_bounds(a) != _bucket_bounds(b):
        raise ValueError(
            f"cannot merge histogram stats with different buckets: "
            f"{_bucket_bounds(a)} vs {_bucket_bounds(b)}"
        )
    merged = {
        "count": int(a["count"]) + int(b["count"]),
        "sum": float(a["sum"]) + float(b["sum"]),
        "min": min(float(a["min"]), float(b["min"])),
        "max": max(float(a["max"]), float(b["max"])),
        "buckets": [
            [le, int(ca) + int(cb)]
            for (le, ca), (_, cb) in zip(a["buckets"], b["buckets"])
        ],
    }
    return _with_quantiles(merged)


def _copy_hist_stats(stats: dict) -> dict:
    out = dict(stats)
    out["buckets"] = [list(pair) for pair in stats["buckets"]]
    return out


# ----------------------------------------------------------------------
# Snapshot merge and delta
# ----------------------------------------------------------------------
def merge_snapshots(a: dict, b: dict) -> dict:
    """Combine two snapshots; associative and commutative.

    Counters and gauges sum per (name, label set); histograms sum
    bucket-wise (requiring identical bucket bounds) with quantiles
    re-derived from the merged buckets.  Inputs are not mutated.
    """
    out = {"counters": {}, "gauges": {}, "histograms": {}}
    for section in ("counters", "gauges"):
        for snap in (a, b):
            for name, series in (snap.get(section) or {}).items():
                merged = out[section].setdefault(name, {})
                for key, value in series.items():
                    merged[key] = merged.get(key, 0.0) + float(value)
    for snap in (a, b):
        for name, series in (snap.get("histograms") or {}).items():
            merged = out["histograms"].setdefault(name, {})
            for key, stats in series.items():
                if key in merged:
                    merged[key] = _merge_hist_stats(merged[key], stats)
                else:
                    merged[key] = _with_quantiles(_copy_hist_stats(stats))
    return out


def snapshot_delta(prev: dict | None, cur: dict) -> dict:
    """The increment from cumulative snapshot ``prev`` to ``cur``.

    Both snapshots must come from the same process.  If any series went
    *backwards* (the process restarted and its counters reset to zero),
    the current cumulative value is taken as the delta — which is exactly
    the restarted process's uncredited work, so folding deltas never
    double-counts across restarts.  Gauges are point-in-time values with
    no meaningful increment and are excluded.
    """
    prev = prev or {}
    delta = {"counters": {}, "gauges": {}, "histograms": {}}
    prev_counters = prev.get("counters") or {}
    for name, series in (cur.get("counters") or {}).items():
        prev_series = prev_counters.get(name) or {}
        out = {}
        for key, value in series.items():
            inc = float(value) - float(prev_series.get(key, 0.0))
            if inc < 0:  # reset: the process restarted from zero
                inc = float(value)
            if inc != 0:
                out[key] = inc
        if out:
            delta["counters"][name] = out
    prev_hists = prev.get("histograms") or {}
    for name, series in (cur.get("histograms") or {}).items():
        prev_series = prev_hists.get(name) or {}
        out = {}
        for key, stats in series.items():
            before = prev_series.get(key)
            if before is None or _bucket_bounds(before) != _bucket_bounds(stats):
                out[key] = _with_quantiles(_copy_hist_stats(stats))
                continue
            counts = [
                int(cc) - int(pc)
                for (_, cc), (_, pc) in zip(stats["buckets"], before["buckets"])
            ]
            count = int(stats["count"]) - int(before["count"])
            if count < 0 or any(c < 0 for c in counts):
                # reset: take the whole new cumulative snapshot
                out[key] = _with_quantiles(_copy_hist_stats(stats))
                continue
            if count == 0:
                continue
            out[key] = _with_quantiles(
                {
                    "count": count,
                    "sum": float(stats["sum"]) - float(before["sum"]),
                    # The window's true extrema are unknowable from
                    # cumulative min/max; the lifetime extrema are a
                    # safe (clamping) superset.
                    "min": float(stats["min"]),
                    "max": float(stats["max"]),
                    "buckets": [
                        [le, c] for (le, _), c in zip(stats["buckets"], counts)
                    ],
                }
            )
        if out:
            delta["histograms"][name] = out
    return delta


# ----------------------------------------------------------------------
# Folding into a live registry
# ----------------------------------------------------------------------
def merge_into_registry(
    registry, snapshot: dict | None, labels: dict | None = None
) -> None:
    """Fold a snapshot into ``registry`` under extra ``labels``.

    Counters increment, histograms merge bucket-wise, gauges are set as
    distinct relabelled series.  Histograms whose bucket bounds disagree
    with an already-registered histogram of the same name are dropped
    and counted in ``repro_obs_merge_dropped_total`` instead of raising:
    a version-skewed worker must not take down the parent.
    """
    if snapshot_is_empty(snapshot) or not getattr(registry, "enabled", False):
        return
    extra = {str(k): str(v) for k, v in (labels or {}).items()}
    for name, series in (snapshot.get("counters") or {}).items():
        counter = registry.counter(name)
        for key, value in series.items():
            merged = parse_label_str(key)
            merged.update(extra)
            counter.inc(float(value), **merged)
    for name, series in (snapshot.get("gauges") or {}).items():
        gauge = registry.gauge(name)
        for key, value in series.items():
            merged = parse_label_str(key)
            merged.update(extra)
            gauge.set(float(value), **merged)
    for name, series in (snapshot.get("histograms") or {}).items():
        for key, stats in series.items():
            bounds = tuple(
                float(le) for le, _ in stats["buckets"] if le != "+Inf"
            )
            merged = parse_label_str(key)
            merged.update(extra)
            try:
                hist = registry.histogram(name, buckets=bounds)
                hist.merge_stats(stats, **merged)
            except (TypeError, ValueError):
                registry.counter(
                    "repro_obs_merge_dropped_total",
                    "snapshot series dropped during fleet aggregation",
                ).inc(metric=name, reason="bucket-mismatch")


class DeltaSource:
    """Worker-side cumulative-to-delta adapter over a live registry.

    Each :meth:`delta` call snapshots the registry and returns the
    increment since the previous call (``None`` when there is nothing
    new or observability is disabled).  The first delta is the whole
    cumulative snapshot — a fresh process's uncredited history — which
    is what makes restart accounting exact: a restarted worker builds a
    fresh ``DeltaSource`` and its work is credited exactly once.

    With ``prime=True`` the baseline is the registry's *current*
    snapshot instead of empty: everything recorded before construction
    is excluded from every delta.  A fork-started worker primes at
    entry, so the parent history its registries were forked with is
    never re-credited as worker work.
    """

    def __init__(self, registry, prime: bool = False):
        self._registry = registry
        self._last: dict = {}
        if prime and getattr(registry, "enabled", False):
            self._last = registry.snapshot()

    def delta(self) -> dict | None:
        """The registry increment since the last call, or ``None``."""
        registry = self._registry
        if not getattr(registry, "enabled", False):
            return None
        cur = registry.snapshot()
        if snapshot_is_empty(cur):
            return None
        out = snapshot_delta(self._last, cur)
        self._last = cur
        return None if snapshot_is_empty(out) else out
