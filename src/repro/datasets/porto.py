"""Loader for the Porto taxi dataset (ECML/PKDD 2015 challenge format).

The paper's outdoor corpus is the public Porto dataset: a CSV where each
row is one taxi trip, with a Unix ``TIMESTAMP`` for the trip start and a
``POLYLINE`` column holding a JSON array of ``[longitude, latitude]``
pairs recorded every 15 seconds.  This module parses that format and
projects coordinates to local meters, so users with the real download can
run every experiment on it; the test-suite exercises the parser on a
bundled synthetic sample in the same format.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path as FilePath
from typing import Iterator

from ..core.trajectory import Trajectory, TrajectoryPoint

__all__ = ["load_porto_csv", "iter_porto_rows", "project_lonlat"]

#: Porto's reporting interval, seconds (fixed by the data collection).
PORTO_REPORT_INTERVAL = 15.0

_EARTH_RADIUS_M = 6_371_000.0


def project_lonlat(
    lon: float, lat: float, ref_lon: float, ref_lat: float
) -> tuple[float, float]:
    """Equirectangular projection of (lon, lat) to meters around a reference.

    Accurate to well under the GPS noise level over a city-sized extent,
    which is all the similarity measures need.
    """
    x = math.radians(lon - ref_lon) * _EARTH_RADIUS_M * math.cos(math.radians(ref_lat))
    y = math.radians(lat - ref_lat) * _EARTH_RADIUS_M
    return (x, y)


def iter_porto_rows(path: str | FilePath) -> Iterator[dict]:
    """Yield raw CSV rows with the ``POLYLINE`` column JSON-decoded.

    Rows with missing data (``MISSING_DATA == "True"``) or an empty or
    malformed polyline are skipped — both occur in the real file.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "POLYLINE" not in reader.fieldnames:
            raise ValueError(f"{path}: not a Porto-format CSV (no POLYLINE column)")
        for row in reader:
            if row.get("MISSING_DATA", "False").strip().lower() == "true":
                continue
            try:
                polyline = json.loads(row["POLYLINE"])
            except (json.JSONDecodeError, TypeError):
                continue
            if not polyline:
                continue
            row["POLYLINE"] = polyline
            yield row


def load_porto_csv(
    path: str | FilePath,
    max_trajectories: int | None = None,
    min_length: int = 20,
    reference: tuple[float, float] | None = None,
) -> list[Trajectory]:
    """Parse a Porto CSV into projected, timestamped trajectories.

    Parameters
    ----------
    max_trajectories:
        Stop after this many accepted trajectories (``None`` = all).
    min_length:
        Minimum number of points, matching the paper's filter of 20.
    reference:
        ``(lon, lat)`` projection origin; defaults to the first accepted
        trajectory's first fix, which keeps city-scale coordinates small.
    """
    trajectories: list[Trajectory] = []
    ref = reference
    for row in iter_porto_rows(path):
        polyline = row["POLYLINE"]
        if len(polyline) < min_length:
            continue
        if ref is None:
            ref = (float(polyline[0][0]), float(polyline[0][1]))
        start = float(row.get("TIMESTAMP", 0) or 0)
        points = []
        for k, (lon, lat) in enumerate(polyline):
            x, y = project_lonlat(float(lon), float(lat), ref[0], ref[1])
            points.append(TrajectoryPoint(x, y, start + k * PORTO_REPORT_INTERVAL))
        trip_id = str(row.get("TRIP_ID", f"trip-{len(trajectories)}"))
        trajectories.append(Trajectory(points, object_id=trip_id))
        if max_trajectories is not None and len(trajectories) >= max_trajectories:
            break
    return trajectories
