"""Generic trajectory persistence: CSV round-trips.

A single flat format shared by every tool in the library: one row per
observation with columns ``object_id, x, y, t``.  Grouping rows by
``object_id`` (preserving file order within a group, then sorting by time
at construction) reconstructs the trajectories exactly.
"""

from __future__ import annotations

import csv
import math
from collections import defaultdict
from pathlib import Path as FilePath
from typing import Iterable

from ..core.trajectory import Trajectory, TrajectoryPoint
from ..errors import MalformedRecordError, validate_policy
from ..preprocess import SanitizationIssue, SanitizationReport

__all__ = [
    "save_trajectories_csv",
    "load_trajectories_csv",
    "load_trajectories_csv_report",
]

_COLUMNS = ("object_id", "x", "y", "t")


def save_trajectories_csv(trajectories: Iterable[Trajectory], path: str | FilePath) -> int:
    """Write trajectories to ``path``; returns the number of rows written.

    Trajectories without an ``object_id`` get a stable positional one so
    the file round-trips.
    """
    rows = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for i, traj in enumerate(trajectories):
            oid = traj.object_id if traj.object_id is not None else f"trajectory-{i:06d}"
            for p in traj:
                writer.writerow([oid, repr(p.x), repr(p.y), repr(p.t)])
                rows += 1
    return rows


def load_trajectories_csv(
    path: str | FilePath, min_length: int = 1, on_error: str = "raise"
) -> list[Trajectory]:
    """Read trajectories written by :func:`save_trajectories_csv`.

    Groups are returned in order of each object's first appearance in the
    file.  ``on_error`` governs malformed and non-finite rows: ``"raise"``
    (the default — a file this library wrote should never be malformed)
    raises :class:`~repro.errors.MalformedRecordError`; ``"skip"`` and
    ``"repair"`` drop the offending rows and keep loading.  Use
    :func:`load_trajectories_csv_report` to also get the count of what
    was dropped.
    """
    trajectories, _report = load_trajectories_csv_report(
        path, min_length=min_length, on_error=on_error
    )
    return trajectories


def load_trajectories_csv_report(
    path: str | FilePath, min_length: int = 1, on_error: str = "raise"
) -> tuple[list[Trajectory], SanitizationReport]:
    """Like :func:`load_trajectories_csv`, plus the sanitization account.

    The report counts every data row seen (``n_seen``), rows dropped for
    being unparseable or non-finite (``skipped_records``), and groups
    dropped for falling below ``min_length`` (``skipped_trajectories``),
    with one :class:`~repro.preprocess.SanitizationIssue` per incident
    locating it as ``path:line``.

    A missing or incomplete header always raises regardless of policy —
    without the required columns no row can be interpreted at all.
    """
    validate_policy(on_error)
    report = SanitizationReport(policy=on_error)
    groups: dict[str, list[TrajectoryPoint]] = defaultdict(list)
    order: list[str] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = [c for c in _COLUMNS if reader.fieldnames is None or c not in reader.fieldnames]
        if missing:
            raise MalformedRecordError(f"{path}: missing required columns {missing}")
        for line_no, raw in enumerate(reader, start=2):
            report.n_seen += 1
            try:
                oid = raw["object_id"]
                x, y, t = float(raw["x"]), float(raw["y"]), float(raw["t"])
                if oid is None or not all(map(math.isfinite, (x, y, t))):
                    raise MalformedRecordError(f"non-finite or incomplete row {raw!r}")
                point = TrajectoryPoint(x, y, t)
            except (TypeError, ValueError) as exc:  # includes MalformedRecordError
                if on_error == "raise":
                    raise MalformedRecordError(
                        f"{path}:{line_no}: malformed row {raw!r}"
                    ) from exc
                report.skipped_records += 1
                report.record(
                    SanitizationIssue(
                        "malformed-record", f"{path}:{line_no}", "skipped", str(exc)
                    )
                )
                continue
            if oid not in groups:
                order.append(oid)
            groups[oid].append(point)
    kept = []
    for oid in order:
        if len(groups[oid]) >= min_length:
            kept.append(Trajectory(groups[oid], object_id=oid))
        else:
            report.skipped_trajectories += 1
            report.record(
                SanitizationIssue(
                    "too-short",
                    oid,
                    "skipped",
                    f"{len(groups[oid])} row(s), {min_length} required",
                )
            )
    return kept, report
