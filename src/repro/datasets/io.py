"""Generic trajectory persistence: CSV round-trips.

A single flat format shared by every tool in the library: one row per
observation with columns ``object_id, x, y, t``.  Grouping rows by
``object_id`` (preserving file order within a group, then sorting by time
at construction) reconstructs the trajectories exactly.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path as FilePath
from typing import Iterable

from ..core.trajectory import Trajectory, TrajectoryPoint

__all__ = ["save_trajectories_csv", "load_trajectories_csv"]

_COLUMNS = ("object_id", "x", "y", "t")


def save_trajectories_csv(trajectories: Iterable[Trajectory], path: str | FilePath) -> int:
    """Write trajectories to ``path``; returns the number of rows written.

    Trajectories without an ``object_id`` get a stable positional one so
    the file round-trips.
    """
    rows = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for i, traj in enumerate(trajectories):
            oid = traj.object_id if traj.object_id is not None else f"trajectory-{i:06d}"
            for p in traj:
                writer.writerow([oid, repr(p.x), repr(p.y), repr(p.t)])
                rows += 1
    return rows


def load_trajectories_csv(path: str | FilePath, min_length: int = 1) -> list[Trajectory]:
    """Read trajectories written by :func:`save_trajectories_csv`.

    Groups are returned in order of each object's first appearance in the
    file.  Raises :class:`ValueError` on a malformed header or row, since a
    file this library wrote should never be malformed.
    """
    groups: dict[str, list[TrajectoryPoint]] = defaultdict(list)
    order: list[str] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = [c for c in _COLUMNS if reader.fieldnames is None or c not in reader.fieldnames]
        if missing:
            raise ValueError(f"{path}: missing required columns {missing}")
        for line_no, raw in enumerate(reader, start=2):
            try:
                oid = raw["object_id"]
                point = TrajectoryPoint(float(raw["x"]), float(raw["y"]), float(raw["t"]))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed row {raw!r}") from exc
            if oid not in groups:
                order.append(oid)
            groups[oid].append(point)
    return [
        Trajectory(groups[oid], object_id=oid)
        for oid in order
        if len(groups[oid]) >= min_length
    ]
