"""Packaged synthetic datasets standing in for the paper's two corpora.

The paper evaluates on (a) the public Porto taxi dataset (15 s reporting,
422 taxis) and (b) a private mall WiFi dataset (sporadic sightings, ~3 m
localization error).  These generators produce structurally equivalent
corpora from the simulators, already filtered to the paper's minimum
length of 20 points; each returns a :class:`TrajectoryDataset` carrying
the metadata the experiments need (recommended grid cell size, location
error, noise sweep range) so harness code never hard-codes per-dataset
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.grid import Grid
from ..core.trajectory import Trajectory
from ..simulation.floorplan import FloorPlan
from ..simulation.pedestrian import simulate_visitors
from ..simulation.roadnet import RoadNetwork
from ..simulation.sampling import periodic_times, poisson_times, sample_path
from ..simulation.vehicle import simulate_taxi_fleet

__all__ = ["TrajectoryDataset", "taxi_dataset", "mall_dataset"]

#: The paper removes trajectories shorter than 20 points (Section VI-A).
MIN_TRAJECTORY_LENGTH = 20


@dataclass
class TrajectoryDataset:
    """A trajectory corpus plus the per-dataset constants experiments use.

    Attributes
    ----------
    name:
        ``"taxi"`` or ``"mall"`` (or a custom label).
    trajectories:
        The corpus, each at least :data:`MIN_TRAJECTORY_LENGTH` points.
    location_error:
        The sensing system's localization error σ in meters (3 m for the
        mall WiFi system; ~10 m for GPS-class taxi terminals).
    cell_size:
        Recommended grid cell size (paper defaults: 3 m mall, 100 m taxi).
    noise_levels:
        The β sweep for the Figs. 8–9 noise experiment.
    grid_sizes:
        The cell-size sweep for the Figs. 12–14 grid experiment.
    margin:
        Extra grid margin (meters) so distorted points stay on the grid.
    """

    name: str
    trajectories: list[Trajectory]
    location_error: float
    cell_size: float
    noise_levels: list[float] = field(default_factory=list)
    grid_sizes: list[float] = field(default_factory=list)
    margin: float = 0.0

    def __len__(self) -> int:
        return len(self.trajectories)

    def make_grid(self, cell_size: float | None = None) -> Grid:
        """Grid covering every point of the corpus (plus ``margin``)."""
        points = np.vstack([t.xy for t in self.trajectories])
        return Grid.covering(points, cell_size or self.cell_size, margin=self.margin)

    def all_points(self) -> np.ndarray:
        """``(N, 2)`` stack of every observation in the corpus."""
        return np.vstack([t.xy for t in self.trajectories])


def taxi_dataset(
    n_trajectories: int = 60,
    seed: int = 7,
    report_interval: float = 15.0,
    noise_std: float = 10.0,
    min_length: int = MIN_TRAJECTORY_LENGTH,
    time_window: float = 3600.0,
) -> TrajectoryDataset:
    """Porto-like outdoor corpus: taxis reporting every ``report_interval`` s.

    Structure mirrors Section VI-A: periodic 15 s reports, GPS-scale noise,
    trajectories shorter than ``min_length`` dropped (trips are lengthened
    until enough survive).  A narrower ``time_window`` packs more trips
    into the same period, making re-identification harder (more
    temporally-overlapping candidates).
    """
    if n_trajectories < 1:
        raise ValueError(f"n_trajectories must be >= 1, got {n_trajectories}")
    rng = np.random.default_rng(seed)
    network = RoadNetwork.manhattan(rng=rng)
    trajectories: list[Trajectory] = []
    # Oversample trips: short ones are filtered, as in the paper.
    while len(trajectories) < n_trajectories:
        batch = simulate_taxi_fleet(
            network, n_trips=2 * n_trajectories, rng=rng, time_window=time_window
        )
        for path in batch:
            times = periodic_times(path.start_time, path.end_time, report_interval)
            traj = sample_path(path, times, noise_std=noise_std, rng=rng, object_id=path.object_id)
            if len(traj) >= min_length:
                trajectories.append(traj.with_object_id(f"taxi-{len(trajectories):04d}"))
            if len(trajectories) >= n_trajectories:
                break
    return TrajectoryDataset(
        name="taxi",
        trajectories=trajectories,
        location_error=noise_std,
        cell_size=100.0,
        noise_levels=[20.0, 40.0, 60.0, 80.0, 100.0],
        grid_sizes=[50.0, 100.0, 150.0, 200.0, 250.0],
        margin=400.0,
    )


def mall_dataset(
    n_trajectories: int = 60,
    seed: int = 11,
    mean_sampling_interval: float = 20.0,
    noise_std: float = 3.0,
    min_length: int = MIN_TRAJECTORY_LENGTH,
    time_window: float = 7200.0,
) -> TrajectoryDataset:
    """Mall-like indoor corpus: sporadic WiFi-style sightings, ~3 m noise.

    Sampling times follow a Poisson process (asynchronous, heterogeneous
    gaps), matching the sporadic sampling the paper highlights indoors.
    A narrower ``time_window`` packs visits closer together, making
    re-identification harder.
    """
    if n_trajectories < 1:
        raise ValueError(f"n_trajectories must be >= 1, got {n_trajectories}")
    rng = np.random.default_rng(seed)
    plan = FloorPlan.generate(rng=rng)
    trajectories: list[Trajectory] = []
    while len(trajectories) < n_trajectories:
        batch = simulate_visitors(
            plan, n_visitors=2 * n_trajectories, rng=rng, time_window=time_window
        )
        for path in batch:
            times = poisson_times(path.start_time, path.end_time, mean_sampling_interval, rng)
            traj = sample_path(path, times, noise_std=noise_std, rng=rng, object_id=path.object_id)
            if len(traj) >= min_length:
                trajectories.append(traj.with_object_id(f"visitor-{len(trajectories):04d}"))
            if len(trajectories) >= n_trajectories:
                break
    return TrajectoryDataset(
        name="mall",
        trajectories=trajectories,
        location_error=noise_std,
        cell_size=3.0,
        noise_levels=[2.0, 4.0, 6.0, 8.0],
        grid_sizes=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        margin=30.0,
    )
