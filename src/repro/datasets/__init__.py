"""Dataset loaders and packaged synthetic corpora."""

from .io import (
    load_trajectories_csv,
    load_trajectories_csv_report,
    save_trajectories_csv,
)
from .mall import load_mall_records
from .porto import load_porto_csv, project_lonlat
from .synthetic import MIN_TRAJECTORY_LENGTH, TrajectoryDataset, mall_dataset, taxi_dataset

__all__ = [
    "TrajectoryDataset",
    "taxi_dataset",
    "mall_dataset",
    "MIN_TRAJECTORY_LENGTH",
    "load_porto_csv",
    "project_lonlat",
    "load_mall_records",
    "save_trajectories_csv",
    "load_trajectories_csv",
    "load_trajectories_csv_report",
]
