"""Loader for mall-style sighting records (Section VI-A, indoor dataset).

The paper's indoor corpus is private, but its record format is described:
each row is one sighting with a device MAC address, the coordinate of the
estimated location, and a timestamp.  Trajectories are built by grouping
on the MAC address and sorting by time.  This loader accepts that format
as CSV with columns ``mac, x, y, timestamp`` (extra columns ignored), so a
site operator with equivalent WiFi-sensing data can plug it straight in.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path as FilePath

from ..core.trajectory import Trajectory, TrajectoryPoint

__all__ = ["load_mall_records", "group_records"]

REQUIRED_COLUMNS = ("mac", "x", "y", "timestamp")


def group_records(rows: list[dict]) -> dict[str, list[TrajectoryPoint]]:
    """Group parsed sighting rows by MAC address."""
    groups: dict[str, list[TrajectoryPoint]] = defaultdict(list)
    for row in rows:
        groups[row["mac"]].append(TrajectoryPoint(row["x"], row["y"], row["timestamp"]))
    return dict(groups)


def load_mall_records(
    path: str | FilePath,
    min_length: int = 20,
) -> list[Trajectory]:
    """Parse a sightings CSV into one trajectory per device.

    Rows with non-numeric coordinates or timestamps are skipped rather
    than aborting the load — real sensing logs contain junk rows.
    Trajectories shorter than ``min_length`` are dropped, matching the
    paper's filter (which reduced 12 858 devices to 1 561 trajectories).
    """
    rows: list[dict] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = [c for c in REQUIRED_COLUMNS if reader.fieldnames is None or c not in reader.fieldnames]
        if missing:
            raise ValueError(f"{path}: missing required columns {missing}")
        for raw in reader:
            try:
                rows.append(
                    {
                        "mac": raw["mac"].strip(),
                        "x": float(raw["x"]),
                        "y": float(raw["y"]),
                        "timestamp": float(raw["timestamp"]),
                    }
                )
            except (TypeError, ValueError):
                continue
    trajectories = [
        Trajectory(points, object_id=mac)
        for mac, points in sorted(group_records(rows).items())
        if len(points) >= min_length
    ]
    return trajectories
