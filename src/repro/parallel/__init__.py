"""Parallel execution of pairwise similarity computations.

:class:`ParallelSTS` wraps a similarity measure and computes pairwise
matrices with a process (or thread) pool — see :mod:`repro.parallel.sts`.
The convenient entry point is ``STS.pairwise(..., n_jobs=...)``, which
routes through this package automatically.

Execution is supervised by default: worker crashes, hangs and corrupt
scores are retried with backoff and the backend degrades
``process → thread → serial`` instead of failing the run — see
:mod:`repro.parallel.supervisor` and the :class:`RunHealth` report.
"""

from .pool import chunk_pairs, resolve_n_jobs
from .sts import ParallelSTS
from .supervisor import ChunkEvent, RunHealth, SupervisedExecutor

__all__ = [
    "ParallelSTS",
    "chunk_pairs",
    "resolve_n_jobs",
    "SupervisedExecutor",
    "RunHealth",
    "ChunkEvent",
]
