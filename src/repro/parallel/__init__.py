"""Parallel execution of pairwise similarity computations.

:class:`ParallelSTS` wraps a similarity measure and computes pairwise
matrices with a process (or thread) pool — see :mod:`repro.parallel.sts`.
The convenient entry point is ``STS.pairwise(..., n_jobs=...)``, which
routes through this package automatically.
"""

from .pool import chunk_pairs, resolve_n_jobs
from .sts import ParallelSTS

__all__ = ["ParallelSTS", "chunk_pairs", "resolve_n_jobs"]
