"""Parallel execution of pairwise similarity computations.

:class:`ParallelSTS` wraps a similarity measure and computes pairwise
matrices with a process (or thread) pool — see :mod:`repro.parallel.sts`.
The convenient entry point is ``STS.pairwise(..., n_jobs=...)``, which
routes through this package automatically.

The process backend broadcasts the trajectory corpus to workers through
a :class:`SharedTrajectoryArena` — one shared-memory pack, zero-copy
views on the worker side — instead of pickling the collections into
every pool; see :mod:`repro.parallel.shm`.

Execution is supervised by default: worker crashes, hangs and corrupt
scores are retried with backoff and the backend degrades
``process → thread → serial`` instead of failing the run — see
:mod:`repro.parallel.supervisor` and the :class:`RunHealth` report.
"""

from .pool import (
    available_cpus,
    chunk_pairs,
    chunk_pairs_by_cost,
    get_parallel_defaults,
    pair_costs,
    resolve_n_jobs,
    set_parallel_defaults,
)
from .shm import ArenaHandle, ArenaView, SharedTrajectoryArena
from .sts import ParallelSTS
from .supervisor import ChunkEvent, RunHealth, SupervisedExecutor

__all__ = [
    "ParallelSTS",
    "available_cpus",
    "chunk_pairs",
    "chunk_pairs_by_cost",
    "pair_costs",
    "resolve_n_jobs",
    "set_parallel_defaults",
    "get_parallel_defaults",
    "ArenaHandle",
    "ArenaView",
    "SharedTrajectoryArena",
    "SupervisedExecutor",
    "RunHealth",
    "ChunkEvent",
]
