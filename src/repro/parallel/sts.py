"""Parallel pairwise similarity: shard the pair list across workers.

A similarity matrix is embarrassingly parallel — every entry is an
independent ``measure.similarity(a, b)`` — but a naive fan-out re-pickles
the measure per pair and loses the symmetric structure.
:class:`ParallelSTS` dispatches *chunks of index pairs* to a pool whose
workers each hold one private copy of the measure (built once per worker
by the pool initializer), then assembles the matrix deterministically
from ``(row, col, score)`` triples.  Because every entry is produced by
the exact same scoring code as the serial path, the parallel matrix
matches ``STS.pairwise`` to the last bit regardless of worker count or
chunk schedule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.trajectory import Trajectory
from .pool import _score_chunk, chunk_pairs, make_executor, resolve_n_jobs

__all__ = ["ParallelSTS"]


class ParallelSTS:
    """Parallel wrapper around any pairwise similarity measure.

    Parameters
    ----------
    measure:
        Any object with a ``similarity(tra1, tra2) -> float`` method
        (typically :class:`repro.core.STS`).  For the process backend it
        must be picklable; STS and its ablation variants are.
    n_jobs:
        Worker count; ``-1`` means one per available CPU (``None``/``1``
        run serially in-process).
    backend:
        ``"process"`` (private measure copy per worker), ``"thread"``
        (shared measure, lock-protected caches), or ``"auto"`` (processes
        when the measure pickles, threads otherwise).
    chunks_per_worker:
        Dispatch granularity: the pair list is split into roughly
        ``n_jobs * chunks_per_worker`` interleaved chunks, trading
        scheduling slack against per-chunk overhead.
    """

    def __init__(
        self,
        measure,
        n_jobs: int | None = -1,
        backend: str = "auto",
        chunks_per_worker: int = 4,
    ):
        self.measure = measure
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.backend = backend
        self.chunks_per_worker = int(chunks_per_worker)

    # ------------------------------------------------------------------
    def similarity(self, tra1: Trajectory, tra2: Trajectory) -> float:
        """Single-pair passthrough (no parallelism for one score)."""
        return self.measure.similarity(tra1, tra2)

    def pairwise(
        self,
        gallery: Sequence[Trajectory],
        queries: Sequence[Trajectory] | None = None,
    ) -> np.ndarray:
        """Similarity matrix, sharded across the worker pool.

        Mirrors :meth:`repro.core.STS.pairwise`: with ``queries=None`` the
        result is the symmetric ``gallery × gallery`` matrix with each
        unordered pair scored once; otherwise ``S[i, j] =
        similarity(queries[i], gallery[j])``.
        """
        if queries is None:
            n = len(gallery)
            out = np.zeros((n, n))
            pairs = [(i, j) for i in range(n) for j in range(i, n)]
        else:
            out = np.zeros((len(queries), len(gallery)))
            pairs = [(i, j) for i in range(len(queries)) for j in range(len(gallery))]
        if not pairs:
            return out
        if self.n_jobs == 1:
            serial = self.measure.pairwise if hasattr(self.measure, "pairwise") else None
            if serial is not None:
                return serial(gallery, queries)
            rows = gallery if queries is None else queries
            for i, j in pairs:
                out[i, j] = self.measure.similarity(rows[i], gallery[j])
            if queries is None:
                out = np.maximum(out, out.T)
            return out

        chunks = chunk_pairs(pairs, self.n_jobs, self.chunks_per_worker)
        executor, _backend = make_executor(
            self.backend, self.n_jobs, self.measure, list(gallery),
            list(queries) if queries is not None else None,
        )
        try:
            for triples in executor.map(_score_chunk, chunks):
                for i, j, score in triples:
                    out[i, j] = score
        finally:
            executor.shutdown()
        if queries is None:
            upper = np.triu(out)
            out = upper + np.triu(upper, 1).T
        return out

    def __repr__(self) -> str:
        return (
            f"ParallelSTS({self.measure!r}, n_jobs={self.n_jobs}, "
            f"backend={self.backend!r})"
        )
