"""Parallel pairwise similarity: shard the pair list across workers.

A similarity matrix is embarrassingly parallel — every entry is an
independent ``measure.similarity(a, b)`` — but a naive fan-out re-pickles
the measure per pair and loses the symmetric structure.
:class:`ParallelSTS` dispatches *chunks of index pairs* to a pool whose
workers each hold one private copy of the measure (built once per worker
by the pool initializer), then assembles the matrix deterministically
from ``(row, col, score)`` triples.  Because every entry is produced by
the exact same scoring code as the serial path, the parallel matrix
matches ``STS.pairwise`` to the last bit regardless of worker count or
chunk schedule.

Execution is *supervised* by default (see
:mod:`repro.parallel.supervisor`): dead workers are detected and their
chunks retried with capped exponential backoff, hung chunks are timed
out, and the backend degrades ``process → thread → serial`` rather than
failing the run.  What happened is recorded in the
:class:`~repro.parallel.supervisor.RunHealth` exposed as
:attr:`ParallelSTS.last_health`.  Passing ``checkpoint=`` journals
completed chunks to disk (atomic write-rename) so an interrupted run
resumes from the last good state — see :mod:`repro.checkpoint`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

import numpy as np

from ..checkpoint import PairwiseCheckpoint
from ..core.trajectory import Trajectory
from ..obs import get_registry, trace_span
from .pool import chunk_pairs, resolve_n_jobs
from .supervisor import RunHealth, SupervisedExecutor

__all__ = ["ParallelSTS"]


class ParallelSTS:
    """Parallel, fault-tolerant wrapper around any similarity measure.

    Parameters
    ----------
    measure:
        Any object with a ``similarity(tra1, tra2) -> float`` method
        (typically :class:`repro.core.STS`).  For the process backend it
        must be picklable; STS and its ablation variants are.
    n_jobs:
        Worker count; ``-1`` means one per available CPU (``None``/``1``
        run serially in-process).
    backend:
        ``"process"`` (private measure copy per worker), ``"thread"``
        (shared measure, lock-protected caches), or ``"auto"`` (processes
        when the measure pickles, threads otherwise).
    chunks_per_worker:
        Dispatch granularity: the pair list is split into roughly
        ``n_jobs * chunks_per_worker`` interleaved chunks, trading
        scheduling slack against per-chunk overhead.
    supervised:
        Run chunks through the :class:`~repro.parallel.supervisor.
        SupervisedExecutor` (default).  ``False`` restores the bare
        fail-fast pool of the original implementation.
    chunk_timeout, max_retries, backoff_base, backoff_max, on_error,
    validate_scores:
        Supervision knobs, forwarded to the supervisor — see
        :class:`~repro.parallel.supervisor.SupervisedExecutor`.

    Attributes
    ----------
    last_health:
        The :class:`~repro.parallel.supervisor.RunHealth` of the most
        recent :meth:`pairwise` call (``None`` before the first call, or
        when the unsupervised serial fast path ran).
    """

    def __init__(
        self,
        measure,
        n_jobs: int | None = -1,
        backend: str = "auto",
        chunks_per_worker: int = 4,
        supervised: bool = True,
        chunk_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        on_error: str = "raise",
        validate_scores: bool = True,
        registry=None,
    ):
        self.measure = measure
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.backend = backend
        self.chunks_per_worker = int(chunks_per_worker)
        self.supervised = bool(supervised)
        self.chunk_timeout = chunk_timeout
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.on_error = on_error
        self.validate_scores = bool(validate_scores)
        self.last_health: RunHealth | None = None
        # Share the measure's registry when it has one, so parallel and
        # serial metrics land in one place.
        if registry is not None:
            self._registry = registry
        else:
            self._registry = getattr(measure, "_registry", None) or get_registry()
        self._h_pairwise = self._registry.histogram(
            "repro_pairwise_seconds", "Wall seconds per pairwise() call"
        ).child()

    # ------------------------------------------------------------------
    def similarity(self, tra1: Trajectory, tra2: Trajectory) -> float:
        """Single-pair passthrough (no parallelism for one score)."""
        return self.measure.similarity(tra1, tra2)

    def _fingerprint(
        self, n_rows: int, n_cols: int, n_pairs: int, n_chunks: int, symmetric: bool
    ) -> dict:
        return {
            "kind": "pairwise",
            "measure": getattr(self.measure, "name", type(self.measure).__name__),
            "n_rows": n_rows,
            "n_cols": n_cols,
            "n_pairs": n_pairs,
            "n_chunks": n_chunks,
            "symmetric": symmetric,
        }

    def pairwise(
        self,
        gallery: Sequence[Trajectory],
        queries: Sequence[Trajectory] | None = None,
        checkpoint: str | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Similarity matrix, sharded across the worker pool.

        Mirrors :meth:`repro.core.STS.pairwise`: with ``queries=None`` the
        result is the symmetric ``gallery × gallery`` matrix with each
        unordered pair scored once; otherwise ``S[i, j] =
        similarity(queries[i], gallery[j])``.

        ``checkpoint`` names a journal file: completed chunks are
        persisted there (atomic write-rename) and a rerun pointing at the
        same file skips them.  Resume requires the same chunk plan — same
        collections, ``n_jobs`` and ``chunks_per_worker`` — which the
        journal's fingerprint enforces.

        ``deadline`` caps the whole call at that many wall-clock seconds:
        chunks not finished in time come back NaN-filled (recorded as
        ``deadline-shed`` in :attr:`last_health`, whose
        ``deadline_expired`` flag is set).  Shed chunks are never
        journaled, so an unbounded rerun on the same checkpoint
        recomputes exactly the missing entries.
        """
        if queries is None:
            n = len(gallery)
            out = np.zeros((n, n))
            pairs = [(i, j) for i in range(n) for j in range(i, n)]
        else:
            out = np.zeros((len(queries), len(gallery)))
            pairs = [(i, j) for i in range(len(queries)) for j in range(len(gallery))]
        if not pairs:
            return out
        if self.n_jobs == 1 and checkpoint is None and deadline is None:
            # Serial, unjournaled and undeadlined (supervised or not): the
            # measure's own batched pairwise (prewarmed) is both faster
            # and identical, and there is nothing to supervise in-process.
            self.last_health = None
            return self._serial_fast_path(out, pairs, gallery, queries)

        chunks = chunk_pairs(pairs, self.n_jobs, self.chunks_per_worker)
        if not self.supervised and checkpoint is None and deadline is None:
            return self._unsupervised(out, chunks, gallery, queries)
        ckpt = None
        done = None
        if checkpoint is not None:
            ckpt = PairwiseCheckpoint(
                checkpoint,
                self._fingerprint(
                    out.shape[0], out.shape[1], len(pairs), len(chunks), queries is None
                ),
            )
            done = ckpt.completed

        backend = self.backend if self.n_jobs > 1 else "serial"
        supervisor = SupervisedExecutor(
            self.measure,
            list(gallery),
            list(queries) if queries is not None else None,
            self.n_jobs,
            backend=backend,
            chunk_timeout=self.chunk_timeout,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            backoff_max=self.backoff_max,
            on_error=self.on_error,
            validate_scores=self.validate_scores,
            deadline=deadline,
            registry=self._registry,
        )
        self.last_health = supervisor.health
        t0 = perf_counter()
        with trace_span(
            "parallel.pairwise",
            n_jobs=self.n_jobs,
            backend=backend,
            chunks=len(chunks),
        ):
            results = supervisor.run(
                chunks, done=done, on_chunk_done=ckpt.record if ckpt is not None else None
            )
        self._h_pairwise.observe(perf_counter() - t0)
        if getattr(self._registry, "enabled", False):
            supervisor.health.metrics = self._registry.snapshot()
        if ckpt is not None:
            ckpt.flush()
        for k in range(len(chunks)):
            for i, j, score in results[k]:
                out[i, j] = score
        if queries is None:
            upper = np.triu(out)
            out = upper + np.triu(upper, 1).T
        return out

    def _unsupervised(self, out, chunks, gallery, queries) -> np.ndarray:
        """The original fail-fast pool: any worker fault kills the run."""
        from .pool import _score_chunk, make_executor

        self.last_health = None
        executor, _backend = make_executor(
            self.backend, self.n_jobs, self.measure, list(gallery),
            list(queries) if queries is not None else None,
        )
        try:
            for triples in executor.map(_score_chunk, chunks):
                for i, j, score in triples:
                    out[i, j] = score
        finally:
            executor.shutdown()
        if queries is None:
            upper = np.triu(out)
            out = upper + np.triu(upper, 1).T
        return out

    def _serial_fast_path(self, out, pairs, gallery, queries) -> np.ndarray:
        serial = self.measure.pairwise if hasattr(self.measure, "pairwise") else None
        if serial is not None:
            return serial(gallery, queries)
        rows = gallery if queries is None else queries
        for i, j in pairs:
            out[i, j] = self.measure.similarity(rows[i], gallery[j])
        if queries is None:
            out = np.maximum(out, out.T)
        return out

    def __repr__(self) -> str:
        return (
            f"ParallelSTS({self.measure!r}, n_jobs={self.n_jobs}, "
            f"backend={self.backend!r}, supervised={self.supervised})"
        )
