"""Parallel pairwise similarity: shard the pair list across workers.

A similarity matrix is embarrassingly parallel — every entry is an
independent ``measure.similarity(a, b)`` — but a naive fan-out re-pickles
the measure per pair and loses the symmetric structure.
:class:`ParallelSTS` dispatches *chunks of index pairs* to a pool whose
workers each hold one private copy of the measure (built once per worker
by the pool initializer), then assembles the matrix deterministically
from ``(row, col, score)`` triples.  Because every entry is produced by
the exact same scoring code as the serial path, the parallel matrix
matches ``STS.pairwise`` to the last bit regardless of worker count,
chunk schedule, chunking policy, or transport.

Transport: by default (``shm="auto"``) the process backend broadcasts
the trajectory corpus through a :class:`~repro.parallel.shm.
SharedTrajectoryArena` — one shared-memory pack, workers attach at
initializer time and score zero-copy views — so the per-call pickle
payload is the measure plus bare index chunks instead of the whole
corpus.  Thread and serial execution share the parent address space and
need no arena.  ``persistent=True`` additionally keeps the worker pool
and the gallery arena warm across ``pairwise``/``query`` calls, so a
serving loop pays pool startup and the gallery broadcast once.

Chunking: ``chunking="count"`` (default) splits the pair list into
equally sized interleaved chunks; ``chunking="cost"`` packs chunks to
near-equal *estimated cost* (Eq. 10 work scales with ``|T1|·|T2|``),
which tightens the straggler tail when trajectory lengths vary widely.
Either way every pair is scored exactly once, so results are identical.

Execution is *supervised* by default (see
:mod:`repro.parallel.supervisor`): dead workers are detected and their
chunks retried with capped exponential backoff, hung chunks are timed
out, and the backend degrades ``process → thread → serial`` rather than
failing the run — the arena becoming a no-op passthrough on the lower
rungs.  What happened is recorded in the
:class:`~repro.parallel.supervisor.RunHealth` exposed as
:attr:`ParallelSTS.last_health`.  Passing ``checkpoint=`` journals
completed chunks to disk (atomic write-rename) so an interrupted run
resumes from the last good state — see :mod:`repro.checkpoint`.
"""

from __future__ import annotations

from functools import partial
from time import perf_counter
from typing import Sequence

import numpy as np

from ..checkpoint import PairwiseCheckpoint
from ..core.trajectory import Trajectory
from ..obs import get_registry, trace_span
from .pool import (
    _init_worker,
    _score_chunk_vs_queries,
    chunk_pairs,
    chunk_pairs_by_cost,
    get_parallel_defaults,
    make_executor,
    pair_costs,
    resolve_n_jobs,
)
from .supervisor import RunHealth, SupervisedExecutor

__all__ = ["ParallelSTS"]

#: Ratio buckets for the chunk-imbalance histogram (chunk cost / mean).
_IMBALANCE_BUCKETS = (0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0)


def _same_collections(a, b) -> bool:
    """Element-wise *identity* match between two trajectory collections.

    Identity, not equality, for the same reason as
    :meth:`~repro.parallel.shm.SharedTrajectoryArena.matches`: warm
    workers hold state keyed to the exact objects they were initialized
    with, so only the same objects may reuse them.
    """
    if a is None or b is None:
        return a is None and b is None
    return len(a) == len(b) and all(x is y for x, y in zip(a, b))


class ParallelSTS:
    """Parallel, fault-tolerant wrapper around any similarity measure.

    Parameters
    ----------
    measure:
        Any object with a ``similarity(tra1, tra2) -> float`` method
        (typically :class:`repro.core.STS`).  For the process backend it
        must be picklable; STS and its ablation variants are.
    n_jobs:
        Worker count; ``-1`` means one per available CPU (``None``/``1``
        run serially in-process).
    backend:
        ``"process"`` (private measure copy per worker), ``"thread"``
        (shared measure, lock-protected caches), or ``"auto"`` (processes
        when the measure pickles, threads otherwise).
    chunks_per_worker:
        Dispatch granularity: the pair list is split into roughly
        ``n_jobs * chunks_per_worker`` chunks, trading scheduling slack
        against per-chunk overhead.
    chunking:
        ``"count"`` — equal pair counts, interleaved; ``"cost"`` —
        near-equal estimated cost from trajectory lengths (see
        :func:`~repro.parallel.pool.chunk_pairs_by_cost`).  ``None``
        (default) resolves against the process-wide default
        (:func:`~repro.parallel.pool.set_parallel_defaults`, initially
        ``"count"``).
    shm:
        ``"auto"`` — broadcast the corpus through a shared-memory arena
        whenever the process backend is in play; ``True`` — same, but
        warn loudly if the arena cannot be used; ``False`` — always
        pickle collections into the pool initializer (the historical
        transport).  ``None`` (default) resolves against the
        process-wide default (initially ``"auto"``).
    persistent:
        Keep the worker pool and the gallery arena warm across calls.
        Use as a context manager (or call :meth:`close`) to release the
        pool and unlink the arena.  Repeated :meth:`pairwise` calls on
        the same gallery object, and any number of :meth:`query` calls
        against it, then skip pool startup and the corpus broadcast.
    supervised:
        Run chunks through the :class:`~repro.parallel.supervisor.
        SupervisedExecutor` (default).  ``False`` restores the bare
        fail-fast pool of the original implementation.
    chunk_timeout, max_retries, backoff_base, backoff_max, on_error,
    validate_scores:
        Supervision knobs, forwarded to the supervisor — see
        :class:`~repro.parallel.supervisor.SupervisedExecutor`.

    Attributes
    ----------
    last_health:
        The :class:`~repro.parallel.supervisor.RunHealth` of the most
        recent :meth:`pairwise` call (``None`` before the first call, or
        when the unsupervised serial fast path ran).
    """

    def __init__(
        self,
        measure,
        n_jobs: int | None = -1,
        backend: str = "auto",
        chunks_per_worker: int = 4,
        chunking: str | None = None,
        shm: bool | str | None = None,
        persistent: bool = False,
        supervised: bool = True,
        chunk_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        on_error: str = "raise",
        validate_scores: bool = True,
        registry=None,
    ):
        defaults = get_parallel_defaults()
        chunking = defaults["chunking"] if chunking is None else chunking
        shm = defaults["shm"] if shm is None else shm
        if chunking not in ("count", "cost"):
            raise ValueError(
                f"chunking must be 'count' or 'cost', got {chunking!r}"
            )
        if shm not in (True, False, "auto"):
            raise ValueError(f"shm must be True, False or 'auto', got {shm!r}")
        self.measure = measure
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.backend = backend
        self.chunks_per_worker = int(chunks_per_worker)
        self.chunking = chunking
        self.shm = shm
        self.persistent = bool(persistent)
        self.supervised = bool(supervised)
        self.chunk_timeout = chunk_timeout
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.on_error = on_error
        self.validate_scores = bool(validate_scores)
        self.last_health: RunHealth | None = None
        self._arena = None
        self._warm: dict | None = None  # {"executor", "backend", "shm_name"}
        # Share the measure's registry when it has one, so parallel and
        # serial metrics land in one place.
        if registry is not None:
            self._registry = registry
        else:
            self._registry = getattr(measure, "_registry", None) or get_registry()
        self._h_pairwise = self._registry.histogram(
            "repro_pairwise_seconds", "Wall seconds per pairwise() call"
        ).child()
        self._h_dispatch = self._registry.histogram(
            "repro_parallel_dispatch_seconds",
            "Wall seconds per supervised chunk-dispatch round trip",
        ).child()
        self._h_imbalance = self._registry.histogram(
            "repro_parallel_chunk_imbalance",
            "Estimated chunk cost over the mean chunk cost, per chunk",
            buckets=_IMBALANCE_BUCKETS,
        ).child()

    # ------------------------------------------------------------------
    def similarity(self, tra1: Trajectory, tra2: Trajectory) -> float:
        """Single-pair passthrough (no parallelism for one score)."""
        return self.measure.similarity(tra1, tra2)

    def _fingerprint(
        self, n_rows: int, n_cols: int, n_pairs: int, n_chunks: int, symmetric: bool
    ) -> dict:
        return {
            "kind": "pairwise",
            "measure": getattr(self.measure, "name", type(self.measure).__name__),
            "n_rows": n_rows,
            "n_cols": n_cols,
            "n_pairs": n_pairs,
            "n_chunks": n_chunks,
            "symmetric": symmetric,
            "chunking": self.chunking,
        }

    # ------------------------------------------------------------------
    # Chunk planning
    # ------------------------------------------------------------------
    def _plan_chunks(
        self,
        pairs: list[tuple[int, int]],
        gallery: Sequence[Trajectory],
        queries: Sequence[Trajectory] | None,
    ) -> list[list[tuple[int, int]]]:
        """Partition the pair list per the configured chunking policy."""
        if self.chunking == "cost":
            rows = gallery if queries is None else queries
            row_lengths = [len(t) for t in rows]
            col_lengths = (
                row_lengths if queries is None else [len(t) for t in gallery]
            )
            costs = pair_costs(pairs, row_lengths, col_lengths)
            chunks = chunk_pairs_by_cost(
                pairs, costs, self.n_jobs, self.chunks_per_worker
            )
            cost_of = dict(zip(pairs, costs))
            totals = [sum(cost_of[p] for p in chunk) for chunk in chunks]
        else:
            chunks = chunk_pairs(pairs, self.n_jobs, self.chunks_per_worker)
            totals = [len(chunk) for chunk in chunks]
        if totals:
            mean = sum(totals) / len(totals)
            if mean > 0:
                for total in totals:
                    self._h_imbalance.observe(total / mean)
        return chunks

    # ------------------------------------------------------------------
    # Arena + warm-pool lifecycle
    # ------------------------------------------------------------------
    def _shm_wanted(self) -> bool:
        """Whether the arena transport should even be attempted."""
        if self.shm is False:
            return False
        # With one worker the effective backend is serial regardless of
        # what was configured: the run executes in the driver process and
        # an arena would be packed and unlinked without ever being
        # attached.
        if self.n_jobs <= 1:
            return False
        # Threads never need the arena; "auto"/True only matter when the
        # process rung can be reached from the configured backend.
        return self.backend in ("auto", "process")

    def _ensure_arena(self, gallery, queries):
        """The (possibly reused) arena for this call, or ``None``.

        Packing failures are not fatal — the pickling transport still
        works — but they are announced so the regression is diagnosable.
        """
        from .shm import SharedTrajectoryArena

        if self._arena is not None:
            if self.persistent and self._arena.matches(gallery, queries):
                return self._arena
            self._drop_arena()
        try:
            self._arena = SharedTrajectoryArena.pack(
                gallery, queries, registry=self._registry
            )
        except Exception as exc:  # e.g. no /dev/shm on the platform
            from .pool import _announce_shm_fallback

            _announce_shm_fallback(f"arena pack failed: {exc}", self._registry)
            self._arena = None
        return self._arena

    def _drop_arena(self) -> None:
        # The warm pool's workers hold attachments keyed to the old
        # arena; a new arena invalidates them along with the segment.
        self._release_warm()
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def _release_warm(self) -> None:
        if self._warm is not None:
            try:
                self._warm["executor"].shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._warm = None

    def _executor_factory(self, gallery, queries, arena_handle):
        """A supervisor ``executor_factory`` honouring persistence."""
        shm_name = arena_handle.shm_name if arena_handle is not None else None
        gallery = list(gallery)
        queries = list(queries) if queries is not None else None

        def factory(backend: str, n_workers: int):
            warm = self._warm
            # Reuse requires the same transport (backend + arena) AND the
            # same collection objects: without the identity check, a call
            # with a different gallery on the pickling/thread paths (where
            # shm_name is None on both sides) would silently score against
            # the collections the warm workers were initialized with.
            if (
                warm is not None
                and warm["backend"] == backend
                and warm["shm_name"] == shm_name
                and _same_collections(warm["gallery"], gallery)
                and _same_collections(warm["queries"], queries)
            ):
                if backend == "thread":
                    # Thread workers read the module-global worker state,
                    # which any executor built in this process since may
                    # have replaced; refreshing it is free of pickling.
                    _init_worker(self.measure, gallery, queries)
                return warm["executor"], warm["backend"]
            self._release_warm()
            executor, actual = make_executor(
                backend,
                n_workers,
                self.measure,
                gallery,
                queries,
                arena_handle=arena_handle,
                registry=self._registry,
            )
            if self.persistent:
                self._warm = {
                    "executor": executor,
                    "backend": actual,
                    "shm_name": shm_name,
                    "gallery": gallery,
                    "queries": queries,
                }
            return executor, actual

        return factory

    def _executor_release(self, executor, actual: str, healthy: bool) -> None:
        """Supervisor release hook: keep healthy persistent pools warm."""
        warm = self._warm
        if self.persistent and warm is not None and warm["executor"] is executor:
            if healthy:
                return  # stays warm for the next call
            self._warm = None
        from .supervisor import _kill_executor

        if healthy:
            executor.shutdown(wait=True, cancel_futures=True)
        else:
            _kill_executor(executor, actual)

    def close(self) -> None:
        """Release the warm pool and unlink the arena (idempotent)."""
        self._release_warm()
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "ParallelSTS":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def pairwise(
        self,
        gallery: Sequence[Trajectory],
        queries: Sequence[Trajectory] | None = None,
        checkpoint: str | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Similarity matrix, sharded across the worker pool.

        Mirrors :meth:`repro.core.STS.pairwise`: with ``queries=None`` the
        result is the symmetric ``gallery × gallery`` matrix with each
        unordered pair scored once; otherwise ``S[i, j] =
        similarity(queries[i], gallery[j])``.

        ``checkpoint`` names a journal file: completed chunks are
        persisted there (atomic write-rename) and a rerun pointing at the
        same file skips them.  Resume requires the same chunk plan — same
        collections, ``n_jobs``, ``chunks_per_worker`` and ``chunking``
        policy — which the journal's fingerprint enforces.

        ``deadline`` caps the whole call at that many wall-clock seconds:
        chunks not finished in time come back NaN-filled (recorded as
        ``deadline-shed`` in :attr:`last_health`, whose
        ``deadline_expired`` flag is set).  Shed chunks are never
        journaled, so an unbounded rerun on the same checkpoint
        recomputes exactly the missing entries.
        """
        if queries is None:
            n = len(gallery)
            out = np.zeros((n, n))
            pairs = [(i, j) for i in range(n) for j in range(i, n)]
        else:
            out = np.zeros((len(queries), len(gallery)))
            pairs = [(i, j) for i in range(len(queries)) for j in range(len(gallery))]
        if not pairs:
            return out
        if self.n_jobs == 1 and checkpoint is None and deadline is None:
            # Serial, unjournaled and undeadlined (supervised or not): the
            # measure's own batched pairwise (prewarmed) is both faster
            # and identical, and there is nothing to supervise in-process.
            self.last_health = None
            return self._serial_fast_path(out, pairs, gallery, queries)

        chunks = self._plan_chunks(pairs, gallery, queries)
        arena = self._ensure_arena(gallery, queries) if self._shm_wanted() else None
        try:
            if not self.supervised and checkpoint is None and deadline is None:
                return self._unsupervised(out, chunks, gallery, queries, arena)
            ckpt = None
            done = None
            if checkpoint is not None:
                ckpt = PairwiseCheckpoint(
                    checkpoint,
                    self._fingerprint(
                        out.shape[0], out.shape[1], len(pairs), len(chunks),
                        queries is None,
                    ),
                )
                done = ckpt.completed

            backend = self.backend if self.n_jobs > 1 else "serial"
            arena_handle = arena.handle if arena is not None else None
            supervisor = SupervisedExecutor(
                self.measure,
                list(gallery),
                list(queries) if queries is not None else None,
                self.n_jobs,
                backend=backend,
                chunk_timeout=self.chunk_timeout,
                max_retries=self.max_retries,
                backoff_base=self.backoff_base,
                backoff_max=self.backoff_max,
                on_error=self.on_error,
                validate_scores=self.validate_scores,
                deadline=deadline,
                registry=self._registry,
                arena_handle=arena_handle,
                executor_factory=self._executor_factory(
                    gallery, queries, arena_handle
                ),
                executor_release=self._executor_release,
            )
            self.last_health = supervisor.health
            t0 = perf_counter()
            with trace_span(
                "parallel.pairwise",
                n_jobs=self.n_jobs,
                backend=backend,
                chunks=len(chunks),
                shm=arena is not None,
            ):
                results = supervisor.run(
                    chunks,
                    done=done,
                    on_chunk_done=ckpt.record if ckpt is not None else None,
                )
            elapsed = perf_counter() - t0
            self._h_pairwise.observe(elapsed)
            self._h_dispatch.observe(elapsed)
            if getattr(self._registry, "enabled", False):
                supervisor.health.metrics = self._registry.snapshot()
            if ckpt is not None:
                ckpt.flush()
            for k in range(len(chunks)):
                for i, j, score in results[k]:
                    out[i, j] = score
            if queries is None:
                upper = np.triu(out)
                out = upper + np.triu(upper, 1).T
            return out
        finally:
            if not self.persistent:
                self._drop_arena()

    def query(
        self,
        query: Trajectory,
        gallery: Sequence[Trajectory],
        cols: Sequence[int] | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Scores of one query against (a subset of) the gallery.

        ``cols`` selects gallery indices to score (default: all); the
        result is aligned with ``cols``.  With ``persistent=True`` the
        gallery arena is packed and broadcast on the first call and the
        warm workers are reused after that, so a serving loop pays only
        the per-call index chunks plus one small pickled query — the
        query itself never enters the arena.

        Scores are produced by the exact same ``measure.similarity``
        calls as the serial path, so the vector is bitwise identical to
        scoring each pair in-process.
        """
        cols = (
            list(range(len(gallery)))
            if cols is None
            else [int(c) for c in cols]
        )
        if not cols:
            return np.empty(0)
        if self.n_jobs == 1 and deadline is None:
            return np.array(
                [float(self.measure.similarity(query, gallery[c])) for c in cols]
            )
        pairs = [(0, c) for c in cols]
        if self.chunking == "cost":
            costs = pair_costs(pairs, [len(query)], [len(t) for t in gallery])
            chunks = chunk_pairs_by_cost(
                pairs, costs, self.n_jobs, self.chunks_per_worker
            )
        else:
            chunks = chunk_pairs(pairs, self.n_jobs, self.chunks_per_worker)
        # The persistent arena must describe the gallery alone, so it
        # stays valid across calls with changing queries.
        arena = self._ensure_arena(gallery, None) if self._shm_wanted() else None
        try:
            backend = self.backend if self.n_jobs > 1 else "serial"
            arena_handle = arena.handle if arena is not None else None
            supervisor = SupervisedExecutor(
                self.measure,
                list(gallery),
                [query],
                self.n_jobs,
                backend=backend,
                chunk_timeout=self.chunk_timeout,
                max_retries=self.max_retries,
                backoff_base=self.backoff_base,
                backoff_max=self.backoff_max,
                on_error=self.on_error,
                validate_scores=self.validate_scores,
                deadline=deadline,
                registry=self._registry,
                arena_handle=arena_handle,
                task=partial(_score_chunk_vs_queries, [query]),
                executor_factory=self._executor_factory(
                    gallery, None, arena_handle
                ),
                executor_release=self._executor_release,
            )
            self.last_health = supervisor.health
            t0 = perf_counter()
            with trace_span(
                "parallel.query",
                n_jobs=self.n_jobs,
                backend=backend,
                chunks=len(chunks),
                shm=arena is not None,
            ):
                results = supervisor.run(chunks)
            self._h_dispatch.observe(perf_counter() - t0)
            by_col = {
                j: score
                for triples in results.values()
                for _i, j, score in triples
            }
            return np.array([by_col[c] for c in cols])
        finally:
            if not self.persistent:
                self._drop_arena()

    def _unsupervised(self, out, chunks, gallery, queries, arena) -> np.ndarray:
        """The original fail-fast pool: any worker fault kills the run."""
        from .pool import _score_chunk

        self.last_health = None
        executor, _backend = make_executor(
            self.backend, self.n_jobs, self.measure, list(gallery),
            list(queries) if queries is not None else None,
            arena_handle=arena.handle if arena is not None else None,
            registry=self._registry,
        )
        try:
            for triples in executor.map(_score_chunk, chunks):
                for i, j, score in triples:
                    out[i, j] = score
        finally:
            executor.shutdown()
        if queries is None:
            upper = np.triu(out)
            out = upper + np.triu(upper, 1).T
        return out

    def _serial_fast_path(self, out, pairs, gallery, queries) -> np.ndarray:
        serial = self.measure.pairwise if hasattr(self.measure, "pairwise") else None
        if serial is not None:
            return serial(gallery, queries)
        rows = gallery if queries is None else queries
        for i, j in pairs:
            out[i, j] = self.measure.similarity(rows[i], gallery[j])
        if queries is None:
            out = np.maximum(out, out.T)
        return out

    def __repr__(self) -> str:
        return (
            f"ParallelSTS({self.measure!r}, n_jobs={self.n_jobs}, "
            f"backend={self.backend!r}, supervised={self.supervised}, "
            f"shm={self.shm!r}, chunking={self.chunking!r}, "
            f"persistent={self.persistent})"
        )
