"""Supervised chunk execution: retries, timeouts, graceful degradation.

The plain pool of :mod:`repro.parallel.pool` assumes a healthy world: no
worker ever dies, hangs, or returns garbage.  On a multi-hour pairwise
run that assumption eventually breaks — the OOM killer takes a worker,
a pathological pair wedges a kernel, a node-level fault corrupts a
result — and with a bare ``ProcessPoolExecutor`` one such event kills
the whole run.

:class:`SupervisedExecutor` wraps the same chunk protocol
(:func:`~repro.parallel.pool._score_chunk` over ``(row, col)`` index
pairs) with a supervision loop:

* **crash detection** — a ``BrokenProcessPool`` fails every in-flight
  chunk; the pool is rebuilt and the unfinished chunks re-dispatched.
* **retries with capped exponential backoff** — each failed round waits
  ``backoff_base * 2**round`` seconds (capped at ``backoff_max``)
  before re-dispatching, so a transiently sick machine gets air.
* **progress timeouts** — if no chunk completes within
  ``chunk_timeout`` seconds the outstanding workers are presumed hung;
  process workers are killed outright (threads cannot be killed — there
  the timeout only abandons queued chunks).
* **graceful degradation** — when a backend exhausts ``max_retries``
  the supervisor steps down the ladder ``process → thread → serial``.
  The serial rung runs in the driver process itself: a chunk that still
  fails there is failing deterministically, and the configured
  ``on_error`` policy decides between propagating the error and filling
  the chunk's pairs with NaN.
* **score validation** — STS scores are probabilities; a non-finite
  score coming back from a worker marks the chunk corrupt and re-scores
  it.

Because recovery replays the exact same chunks through the exact same
scoring code, a run that experienced crashes/timeouts still produces a
matrix bitwise-identical to a clean serial run.  Everything that
happened along the way is recorded in a :class:`RunHealth` report.
"""

from __future__ import annotations

import time
from collections import defaultdict
from functools import partial
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ScoreCorruptionError, validate_policy
from ..obs import adopt_span, get_registry, merge_into_registry
from .pool import TELEMETRY_KEY, _init_worker, _score_chunk, _task_with_telemetry, make_executor

__all__ = ["ChunkEvent", "RunHealth", "SupervisedExecutor"]

Triple = tuple[int, int, float]
Chunk = Sequence[tuple[int, int]]


@dataclass(frozen=True)
class ChunkEvent:
    """One supervision incident: what went wrong with which chunk."""

    chunk: int
    attempt: int
    backend: str
    kind: str  # "worker-crash" | "timeout" | "error" | "corrupt-score" | "backend-unavailable" | "skipped" | "deadline-shed"
    detail: str = ""

    def __str__(self) -> str:
        note = f": {self.detail}" if self.detail else ""
        return f"[{self.backend}] chunk {self.chunk} attempt {self.attempt} {self.kind}{note}"


@dataclass
class RunHealth:
    """Structured account of one supervised run.

    A clean run has ``ok`` true and empty ``events``; anything the
    supervisor had to absorb — crashes, retries, backend degradations,
    skipped chunks — is counted here and detailed in ``events``.
    """

    backend_requested: str = "auto"
    n_chunks: int = 0
    resumed_chunks: int = 0
    rounds: int = 0
    retries: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    corrupt_scores: int = 0
    errors: int = 0
    skipped_pairs: int = 0
    deadline_expired: bool = False
    backends_used: list[str] = field(default_factory=list)
    degradations: list[str] = field(default_factory=list)
    events: list[ChunkEvent] = field(default_factory=list)
    #: Metrics snapshot taken when the run finished (None when obs is off).
    metrics: dict | None = None

    @property
    def ok(self) -> bool:
        """True when the run needed no recovery at all."""
        return not self.events and not self.degradations and not self.deadline_expired

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def record(self, event: ChunkEvent) -> None:
        """Append one supervision incident."""
        self.events.append(event)

    def to_dict(self) -> dict:
        """JSON-serializable form of the health report."""
        return {
            "backend_requested": self.backend_requested,
            "n_chunks": self.n_chunks,
            "resumed_chunks": self.resumed_chunks,
            "rounds": self.rounds,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "timeouts": self.timeouts,
            "corrupt_scores": self.corrupt_scores,
            "errors": self.errors,
            "skipped_pairs": self.skipped_pairs,
            "deadline_expired": self.deadline_expired,
            "backends_used": list(self.backends_used),
            "degradations": list(self.degradations),
            "events": [
                {
                    "chunk": e.chunk,
                    "attempt": e.attempt,
                    "backend": e.backend,
                    "kind": e.kind,
                    "detail": e.detail,
                }
                for e in self.events
            ],
            "metrics": self.metrics,
        }

    def summary(self) -> str:
        """One-line human summary of the run's health."""
        if self.ok:
            return f"healthy: {self.n_chunks} chunks, no incidents"
        return (
            f"recovered: {self.n_chunks} chunks, {self.retries} retries, "
            f"{self.worker_crashes} worker crash(es), {self.timeouts} timeout(s), "
            f"{self.corrupt_scores} corrupt score(s), {self.errors} error(s), "
            f"degradations {self.degradations or 'none'}, "
            f"{self.skipped_pairs} pair(s) skipped"
            + (", deadline EXPIRED" if self.deadline_expired else "")
        )


def _kill_executor(executor, backend: str) -> None:
    """Tear an executor down hard after a hang.

    Process workers are killed with SIGKILL — a hung worker will not
    honour a graceful shutdown.  Threads cannot be killed in CPython;
    abandoning the executor at least cancels everything still queued.
    """
    if backend == "process":
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # already dead
                pass
    executor.shutdown(wait=False, cancel_futures=True)


class SupervisedExecutor:
    """Run score chunks to completion through a fault-tolerance ladder.

    Parameters
    ----------
    measure, gallery, queries:
        The scoring state, exactly as :func:`~repro.parallel.pool.
        make_executor` ships it to workers.
    n_jobs:
        Worker count for the pooled rungs.
    backend:
        First rung of the ladder: ``"auto"``/``"process"`` start at the
        process pool, ``"thread"`` at the thread pool, ``"serial"`` runs
        everything in the driver.
    chunk_timeout:
        Progress timeout in seconds: if *no* chunk completes for this
        long, outstanding workers are presumed hung.  ``None`` disables
        timeout supervision.
    max_retries:
        Failed-round budget per rung before degrading to the next one.
    backoff_base, backoff_max:
        Capped exponential backoff between failed rounds, in seconds.
    on_error:
        What to do when the serial rung still fails a chunk:
        ``"raise"`` propagates the original exception, ``"skip"`` (and
        ``"repair"``, which is equivalent at this layer) fills the
        chunk's pairs with NaN and records them as skipped.
    validate_scores:
        Reject non-finite scores as chunk corruption (on by default).
    deadline:
        Wall-clock allowance for the whole run, in seconds (``None`` =
        unbounded).  When it expires, chunks still outstanding are *shed*
        — their pairs filled with NaN and recorded as ``deadline-shed``
        events — so the run returns promptly with a partial-but-shaped
        result instead of stalling.  Shed chunks are never journaled to
        a checkpoint, so a later unbounded rerun recomputes them.
    sleep:
        Injection point for the backoff sleep (tests pass a no-op).
    clock:
        Monotonic time source for the deadline (injectable for tests).
    arena_handle:
        Optional :class:`~repro.parallel.shm.ArenaHandle`: the process
        rung then uses the shared-memory protocol (workers attach to the
        arena instead of unpickling the collections).  The thread and
        serial rungs ignore it — they share the parent address space, so
        the arena is a no-op passthrough and ``gallery``/``queries`` are
        used directly.  Degrading away from the process rung while an
        arena is in play is announced (warning + fallback counter).
    task:
        The chunk-scoring callable submitted to the pool (default
        :func:`~repro.parallel.pool._score_chunk`).  Must be picklable
        (top-level function or ``functools.partial`` of one) and accept
        one argument: the chunk's pair list.
    executor_factory, executor_release:
        Pool lifecycle hooks for warm-pool reuse.  ``executor_factory(
        backend, n_workers)`` returns ``(executor, actual_backend)``;
        ``executor_release(executor, actual_backend, healthy)`` is called
        after each round — ``healthy=False`` means the pool broke or
        hung and must not be reused.  Defaults build a fresh pool per
        round and shut it down after (the historical behaviour).
    """

    _LADDERS = {
        "auto": ("process", "thread", "serial"),
        "process": ("process", "thread", "serial"),
        "thread": ("thread", "serial"),
        "serial": ("serial",),
    }

    def __init__(
        self,
        measure,
        gallery,
        queries,
        n_jobs: int,
        backend: str = "auto",
        chunk_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        on_error: str = "raise",
        validate_scores: bool = True,
        deadline: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        registry=None,
        arena_handle=None,
        task: Callable[[Chunk], list[Triple]] | None = None,
        executor_factory=None,
        executor_release=None,
    ):
        if backend not in self._LADDERS:
            raise ValueError(
                f"backend must be one of {sorted(self._LADDERS)}, got {backend!r}"
            )
        self.measure = measure
        self.gallery = gallery
        self.queries = queries
        self.n_jobs = int(n_jobs)
        self.backend = backend
        self.chunk_timeout = chunk_timeout
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.on_error = validate_policy(on_error)
        self.validate_scores = bool(validate_scores)
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
        self.deadline = deadline
        self.sleep = sleep
        self.clock = clock
        self.arena_handle = arena_handle
        self.task = task if task is not None else _score_chunk
        self._executor_factory = (
            executor_factory if executor_factory is not None else self._default_factory
        )
        self._executor_release = (
            executor_release if executor_release is not None else self._default_release
        )
        self.health = RunHealth(backend_requested=backend)
        self._attempts: dict[int, int] = defaultdict(int)
        self._deadline_at: float | None = None
        reg = registry if registry is not None else get_registry()
        self._registry = reg
        chunk_counter = reg.counter(
            "repro_supervisor_chunks_total",
            "Chunk lifecycle events in the supervised executor",
        )
        self._m_queued = chunk_counter.child(event="queued")
        self._m_completed = chunk_counter.child(event="completed")
        self._m_retried = chunk_counter.child(event="retried")
        self._m_shed = chunk_counter.child(event="shed")
        self._m_resumed = chunk_counter.child(event="resumed")
        self._m_degradations = reg.counter(
            "repro_supervisor_degradations_total",
            "Backend ladder step-downs (process->thread->serial)",
        )

    # ------------------------------------------------------------------
    def _default_factory(self, backend: str, n_workers: int):
        """Fresh pool per round (shared-memory protocol when arena set)."""
        return make_executor(
            backend,
            n_workers,
            self.measure,
            self.gallery,
            self.queries,
            arena_handle=self.arena_handle,
            registry=self._registry,
        )

    def _default_release(self, executor, actual: str, healthy: bool) -> None:
        """Tear the round's pool down (hard when it broke or hung)."""
        if healthy:
            executor.shutdown(wait=True, cancel_futures=True)
        else:
            _kill_executor(executor, actual)

    # ------------------------------------------------------------------
    def _remaining(self) -> float | None:
        """Seconds left on the run deadline (``None`` when unbounded)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - self.clock()

    def _deadline_expired(self) -> bool:
        remaining = self._remaining()
        return remaining is not None and remaining <= 0.0

    def _shed_remaining(
        self,
        chunks: Sequence[Chunk],
        todo: Sequence[int],
        results: dict[int, list[Triple]],
    ) -> None:
        """NaN-fill every chunk still outstanding at deadline expiry.

        Shed chunks are deliberately *not* journaled through the
        checkpoint hook: the NaNs are placeholders, and a resumed
        unbounded run must recompute them.
        """
        health = self.health
        health.deadline_expired = True
        for k in todo:
            if k in results:
                continue
            results[k] = [(i, j, float("nan")) for i, j in chunks[k]]
            health.skipped_pairs += len(chunks[k])
            self._m_shed.inc()
            health.record(
                ChunkEvent(
                    k,
                    self._attempts[k] + 1,
                    "deadline",
                    "deadline-shed",
                    f"run deadline of {self.deadline}s expired",
                )
            )

    # ------------------------------------------------------------------
    def run(
        self,
        chunks: Sequence[Chunk],
        done: dict[int, list[Triple]] | None = None,
        on_chunk_done: Callable[[int, list[Triple]], None] | None = None,
    ) -> dict[int, list[Triple]]:
        """Score every chunk, surviving crashes/hangs/corruption.

        ``done`` seeds already-completed chunks (checkpoint resume);
        ``on_chunk_done(index, triples)`` fires once per freshly
        completed chunk, in completion order — the checkpoint journaling
        hook.  Returns ``{chunk_index: [(row, col, score), ...]}`` for
        every chunk.
        """
        health = self.health
        results: dict[int, list[Triple]] = dict(done) if done else {}
        health.n_chunks = len(chunks)
        health.resumed_chunks = len(results)
        todo = [k for k in range(len(chunks)) if k not in results]
        if results:
            self._m_resumed.inc(len(results))
        if todo:
            self._m_queued.inc(len(todo))
        if self.deadline is not None and self._deadline_at is None:
            self._deadline_at = self.clock() + self.deadline

        ladder = self._LADDERS[self.backend]
        rung = 0
        rounds_on_rung = 0
        while todo:
            if self._deadline_expired():
                self._shed_remaining(chunks, todo, results)
                todo = []
                break
            backend = ladder[rung]
            if backend == "serial":
                self._run_serial(chunks, todo, results, on_chunk_done)
                todo = []
                break
            health.rounds += 1
            rounds_on_rung += 1
            failed = self._run_pooled(backend, chunks, todo, results, on_chunk_done)
            todo = [k for k in todo if k not in results]
            if not todo:
                break
            if self._deadline_expired():
                continue  # shed at the top of the loop, no retry/backoff
            health.retries += 1
            for k, kind, detail in failed:
                self._attempts[k] += 1
                self._m_retried.inc()
                health.record(
                    ChunkEvent(k, self._attempts[k], backend, kind, detail)
                )
            if rounds_on_rung > self.max_retries or any(
                kind == "backend-unavailable" for _, kind, _ in failed
            ):
                next_backend = ladder[rung + 1]
                health.degradations.append(f"{backend}->{next_backend}")
                self._m_degradations.inc(step=f"{backend}->{next_backend}")
                if backend == "process" and self.arena_handle is not None:
                    # Leaving the process rung abandons the shared-memory
                    # protocol; say so rather than silently re-pickling.
                    from .pool import _announce_shm_fallback

                    _announce_shm_fallback(
                        f"degraded {backend}->{next_backend}", self._registry
                    )
                rung += 1
                rounds_on_rung = 0
            else:
                delay = min(
                    self.backoff_max,
                    self.backoff_base * (2 ** (rounds_on_rung - 1)),
                )
                if delay > 0:
                    self.sleep(delay)
        return results

    # ------------------------------------------------------------------
    def _validate(self, triples: list[Triple]) -> bool:
        if not self.validate_scores:
            return True
        return bool(np.isfinite([score for _, _, score in triples]).all())

    def _absorb_worker_payload(self, payload):
        """Unwrap a telemetry envelope; fold its delta, adopt its spans.

        Folding happens at result-unwrap time — before validation — so a
        chunk whose scores are rejected still has its (real) worker-side
        work credited to the fleet series.
        """
        if not (isinstance(payload, dict) and payload.get(TELEMETRY_KEY)):
            return payload
        delta = payload.get("delta")
        if delta:
            merge_into_registry(self._registry, delta, {"process": "worker"})
        trace = payload.get("trace")
        if trace:
            adopt_span(trace)
        return payload["triples"]

    def _run_pooled(
        self,
        backend: str,
        chunks: Sequence[Chunk],
        todo: Sequence[int],
        results: dict[int, list[Triple]],
        on_chunk_done,
    ) -> list[tuple[int, str, str]]:
        """One dispatch round on a pool; returns ``(chunk, kind, detail)`` failures."""
        health = self.health
        try:
            executor, actual = self._executor_factory(
                backend, max(1, min(self.n_jobs, len(todo)))
            )
        except Exception as exc:
            # e.g. an un-picklable measure on the process rung.
            return [
                (k, "backend-unavailable", f"{type(exc).__name__}: {exc}")
                for k in todo
            ]
        if actual not in health.backends_used:
            health.backends_used.append(actual)

        failed: list[tuple[int, str, str]] = []
        pool_broke = False
        hung = False
        # On the process rung the task is wrapped so each result carries
        # the worker's registry delta and span subtree home; thread and
        # serial rungs share the parent registry/tracer, so wrapping
        # there would double-count.
        task = self.task
        if actual == "process":
            task = partial(_task_with_telemetry, self.task)
        futures = {executor.submit(task, chunks[k]): k for k in todo}
        remaining = set(futures)
        try:
            while remaining:
                wait_timeout = self.chunk_timeout
                deadline_left = self._remaining()
                if deadline_left is not None:
                    deadline_left = max(deadline_left, 1e-3)
                    wait_timeout = (
                        deadline_left
                        if wait_timeout is None
                        else min(wait_timeout, deadline_left)
                    )
                done_set, not_done = wait(
                    remaining, timeout=wait_timeout, return_when=FIRST_COMPLETED
                )
                if not done_set:
                    hung = True
                    if self._deadline_expired():
                        # Run deadline, not a hang: abandon the round; the
                        # supervision loop sheds whatever is left.
                        break
                    # No progress for a whole timeout window: presume the
                    # outstanding workers hung.
                    health.timeouts += 1
                    for fut in not_done:
                        failed.append(
                            (
                                futures[fut],
                                "timeout",
                                f"no progress for {self.chunk_timeout}s",
                            )
                        )
                    break
                for fut in done_set:
                    k = futures[fut]
                    try:
                        triples = self._absorb_worker_payload(fut.result())
                    except BrokenProcessPool as exc:
                        pool_broke = True
                        failed.append(
                            (k, "worker-crash", str(exc) or "BrokenProcessPool")
                        )
                    except Exception as exc:
                        failed.append((k, "error", f"{type(exc).__name__}: {exc}"))
                    else:
                        if self._validate(triples):
                            results[k] = triples
                            self._m_completed.inc()
                            if on_chunk_done is not None:
                                on_chunk_done(k, triples)
                        else:
                            health.corrupt_scores += 1
                            failed.append(
                                (k, "corrupt-score", "non-finite score in chunk")
                            )
                remaining = not_done
        finally:
            self._executor_release(executor, actual, healthy=not (hung or pool_broke))
        if pool_broke:
            health.worker_crashes += 1
        health.errors += sum(1 for _, kind, _ in failed if kind == "error")
        return failed

    def _run_serial(
        self,
        chunks: Sequence[Chunk],
        todo: Sequence[int],
        results: dict[int, list[Triple]],
        on_chunk_done,
    ) -> None:
        """Last rung: score in the driver process, policy-gated."""
        health = self.health
        if "serial" not in health.backends_used:
            health.backends_used.append("serial")
        _init_worker(self.measure, self.gallery, self.queries)
        for pos, k in enumerate(todo):
            if self._deadline_expired():
                self._shed_remaining(chunks, todo[pos:], results)
                return
            attempt = self._attempts[k] + 1
            try:
                triples = self.task(chunks[k])
                if not self._validate(triples):
                    health.corrupt_scores += 1
                    raise ScoreCorruptionError(
                        f"chunk {k} produced a non-finite score serially"
                    )
            except Exception as exc:
                health.errors += 1
                if self.on_error == "raise":
                    health.record(
                        ChunkEvent(k, attempt, "serial", "error", str(exc))
                    )
                    raise
                # Skip policy: re-score the chunk pair by pair so only the
                # genuinely failing pairs are lost, not chunk-mates.
                triples, n_bad = self._score_pairs_individually(chunks[k])
                health.skipped_pairs += n_bad
                health.record(
                    ChunkEvent(
                        k,
                        attempt,
                        "serial",
                        "skipped",
                        f"{type(exc).__name__}: {exc} "
                        f"({n_bad}/{len(chunks[k])} pair(s) lost)",
                    )
                )
            results[k] = triples
            self._m_completed.inc()
            if on_chunk_done is not None:
                on_chunk_done(k, triples)

    def _score_pairs_individually(
        self, chunk: Chunk
    ) -> tuple[list[Triple], int]:
        """Score a failing chunk one pair at a time, NaN-filling failures."""
        rows = self.gallery if self.queries is None else self.queries
        triples: list[Triple] = []
        n_bad = 0
        for i, j in chunk:
            try:
                score = float(self.measure.similarity(rows[i], self.gallery[j]))
                if self.validate_scores and not np.isfinite(score):
                    raise ScoreCorruptionError(f"non-finite score for pair ({i}, {j})")
            except Exception:
                score = float("nan")
                n_bad += 1
            triples.append((i, j, score))
        return triples, n_bad
