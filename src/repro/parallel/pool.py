"""Worker-pool plumbing for parallel pairwise similarity.

The process backend ships the measure and the trajectory collections to
each worker **once**, through the pool initializer, instead of pickling
them into every task.  Workers rebuild their own estimator caches (the
measure's LRU caches deliberately pickle empty — see
:class:`repro.core.cache.LRUCache`), so each worker owns a private,
race-free working set.  Tasks are then just lists of ``(row, col)`` index
pairs, and results come back as ``(row, col, score)`` triples — cheap to
serialize and order-independent to assemble.

The thread backend shares one measure instance across workers; the
measure's caches are lock-protected, and the heavy kernels (pocketfft,
BLAS) release the GIL, so threads help even for CPU-bound scoring when
processes are unavailable (un-picklable custom models, restricted
platforms).
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

__all__ = [
    "resolve_n_jobs",
    "chunk_pairs",
    "make_executor",
]

# Per-process worker state, populated by the pool initializer.  A module
# global (not an instance attribute) because worker functions must be
# importable top-level objects for pickling.
_WORKER_STATE: dict = {}


def _init_worker(measure, gallery, queries) -> None:
    """Pool initializer: install this worker's private scoring state."""
    _WORKER_STATE["measure"] = measure
    _WORKER_STATE["gallery"] = gallery
    _WORKER_STATE["queries"] = queries


def _score_chunk(pairs: Sequence[tuple[int, int]]) -> list[tuple[int, int, float]]:
    """Score one chunk of index pairs against the worker's state."""
    from ..obs import trace_span

    measure = _WORKER_STATE["measure"]
    gallery = _WORKER_STATE["gallery"]
    queries = _WORKER_STATE["queries"]
    rows = gallery if queries is None else queries
    with trace_span("parallel.chunk", pairs=len(pairs)):
        return [(i, j, measure.similarity(rows[i], gallery[j])) for i, j in pairs]


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per available
    CPU; other negative values follow the scikit-learn convention
    ``cpu_count() + 1 + n_jobs`` (floored at 1).
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs must be a positive count, -1, or None")
    cpus = os.cpu_count() or 1
    if n_jobs < 0:
        return max(1, cpus + 1 + n_jobs)
    return n_jobs


def chunk_pairs(
    pairs: Sequence[tuple[int, int]], n_workers: int, chunks_per_worker: int = 4
) -> list[list[tuple[int, int]]]:
    """Split the pair list into interleaved chunks for dispatch.

    Chunks are taken round-robin (``pairs[k::n_chunks]``) rather than as
    contiguous slices: pair costs correlate with trajectory length and
    neighbouring pairs share a row, so contiguous slabs would concentrate
    the expensive rows in a few unlucky workers.  Interleaving spreads
    them evenly while remaining fully deterministic.
    """
    if not pairs:
        return []
    n_chunks = min(len(pairs), max(1, n_workers * chunks_per_worker))
    return [list(pairs[k::n_chunks]) for k in range(n_chunks)]


def make_executor(
    backend: str, n_workers: int, measure, gallery, queries
) -> tuple[Executor, str]:
    """Build the executor for ``backend`` (``"process"``/``"thread"``/``"auto"``).

    ``"auto"`` prefers processes (true parallelism for the CPU-bound
    scoring loop) and falls back to threads when the measure cannot cross
    a process boundary (e.g. a closure-based transition policy that does
    not pickle).  Returns the executor and the backend actually chosen.
    """
    if backend not in ("auto", "process", "thread"):
        raise ValueError(
            f"backend must be 'auto', 'process' or 'thread', got {backend!r}"
        )
    if backend in ("auto", "process"):
        try:
            import pickle

            pickle.dumps((measure, gallery, queries))
        except Exception:
            if backend == "process":
                raise
        else:
            return (
                ProcessPoolExecutor(
                    max_workers=n_workers,
                    initializer=_init_worker,
                    initargs=(measure, gallery, queries),
                ),
                "process",
            )
    # Thread fallback: share the measure (its caches are lock-protected).
    _init_worker(measure, gallery, queries)
    return ThreadPoolExecutor(max_workers=n_workers), "thread"
