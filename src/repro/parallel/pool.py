"""Worker-pool plumbing for parallel pairwise similarity.

The process backend ships the measure to each worker **once**, through
the pool initializer, instead of pickling it into every task.  The
trajectory collections travel either the same way (pickled initargs, the
historical path) or — preferably — as a :class:`~repro.parallel.shm.
SharedTrajectoryArena` handle: the corpus lives in one shared-memory
block the parent packed, workers attach at initializer time, and the
only per-call payload is ``(row, col)`` index chunks.  Results come back
as ``(row, col, score)`` triples — cheap to serialize and
order-independent to assemble.

Workers rebuild their own estimator caches (the measure's LRU caches
deliberately pickle empty — see :class:`repro.core.cache.LRUCache`), so
each worker owns a private, race-free working set.

The thread backend shares one measure instance across workers; the
measure's caches are lock-protected, and the heavy kernels (pocketfft,
BLAS) release the GIL, so threads help even for CPU-bound scoring when
processes are unavailable (un-picklable custom models, restricted
platforms).  Threads share the parent address space, so the arena is a
no-op passthrough there: the original trajectory lists are used as-is.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

__all__ = [
    "resolve_n_jobs",
    "chunk_pairs",
    "chunk_pairs_by_cost",
    "pair_costs",
    "make_executor",
    "set_parallel_defaults",
    "get_parallel_defaults",
    "mark_cluster_worker",
    "in_cluster_worker",
]

# Set inside cluster shard workers (see repro.cluster.worker): a shard
# worker is itself one of N·R processes, so any pool it sizes through
# resolve_n_jobs must stay serial — otherwise a cluster whose workers
# each open a per-CPU pool forks N·R·cpus processes.  The env var makes
# the mark survive a further fork/spawn, should one ever happen.
_IN_CLUSTER_WORKER = False
_CLUSTER_WORKER_ENV = "REPRO_CLUSTER_WORKER"


def mark_cluster_worker() -> None:
    """Mark this process as a cluster shard worker (clamps pools to 1)."""
    global _IN_CLUSTER_WORKER
    _IN_CLUSTER_WORKER = True
    os.environ[_CLUSTER_WORKER_ENV] = "1"


def in_cluster_worker() -> bool:
    """Whether this process is a cluster shard worker."""
    return _IN_CLUSTER_WORKER or os.environ.get(_CLUSTER_WORKER_ENV) == "1"

# Process-wide defaults for the parallel transport/chunking policy.
# ParallelSTS resolves unspecified (None) shm/chunking arguments against
# these, so entry points that cannot thread the knobs through every layer
# (the CLI's `report`, the experiment runners) can set them once.
_PARALLEL_DEFAULTS = {"shm": "auto", "chunking": "count"}


def set_parallel_defaults(
    shm: bool | str | None = None, chunking: str | None = None
) -> None:
    """Set process-wide defaults for ``shm`` and ``chunking``.

    ``None`` leaves a knob unchanged.  Affects every subsequently built
    :class:`~repro.parallel.ParallelSTS` that does not pass the knob
    explicitly.
    """
    if shm is not None:
        if shm not in (True, False, "auto"):
            raise ValueError(f"shm must be True, False or 'auto', got {shm!r}")
        _PARALLEL_DEFAULTS["shm"] = shm
    if chunking is not None:
        if chunking not in ("count", "cost"):
            raise ValueError(
                f"chunking must be 'count' or 'cost', got {chunking!r}"
            )
        _PARALLEL_DEFAULTS["chunking"] = chunking


def get_parallel_defaults() -> dict:
    """The current process-wide ``{"shm": ..., "chunking": ...}`` defaults."""
    return dict(_PARALLEL_DEFAULTS)

# Per-process worker state, populated by the pool initializer.  A module
# global (not an instance attribute) because worker functions must be
# importable top-level objects for pickling.
_WORKER_STATE: dict = {}


def _init_worker(measure, gallery, queries) -> None:
    """Pool initializer: install this worker's private scoring state."""
    _WORKER_STATE["measure"] = measure
    _WORKER_STATE["gallery"] = gallery
    _WORKER_STATE["queries"] = queries
    _WORKER_STATE.pop("arena_view", None)
    _install_delta_sources()


def _init_worker_shm(measure, handle) -> None:
    """Pool initializer for the shared-memory protocol.

    Attaches this worker to the parent's arena exactly once and installs
    zero-copy trajectory views as the scoring state.  The view object is
    kept in the worker state so the mapping outlives the initializer.
    """
    from .shm import SharedTrajectoryArena

    _WORKER_STATE["measure"] = measure
    _install_delta_sources()  # before attach: attach timing is worker work
    view = SharedTrajectoryArena.attach(handle)
    _WORKER_STATE["gallery"] = view.gallery
    _WORKER_STATE["queries"] = view.queries
    _WORKER_STATE["arena_view"] = view


def _score_chunk(pairs: Sequence[tuple[int, int]]) -> list[tuple[int, int, float]]:
    """Score one chunk of index pairs against the worker's state."""
    from ..obs import trace_span

    measure = _WORKER_STATE["measure"]
    gallery = _WORKER_STATE["gallery"]
    queries = _WORKER_STATE["queries"]
    rows = gallery if queries is None else queries
    with trace_span("parallel.chunk", pairs=len(pairs)):
        return [(i, j, measure.similarity(rows[i], gallery[j])) for i, j in pairs]


def _score_chunk_vs_queries(
    queries, pairs: Sequence[tuple[int, int]]
) -> list[tuple[int, int, float]]:
    """Score a chunk whose *rows* are call-supplied query trajectories.

    Used by the persistent-pool query path: the gallery is the arena the
    worker attached at initializer time, while the (small) query list
    rides along with the task.  ``functools.partial`` binds ``queries``
    so the submitted callable stays a picklable top-level function.
    """
    from ..obs import trace_span

    measure = _WORKER_STATE["measure"]
    gallery = _WORKER_STATE["gallery"]
    with trace_span("parallel.chunk", pairs=len(pairs)):
        return [(i, j, measure.similarity(queries[i], gallery[j])) for i, j in pairs]


#: Sentinel key marking a process-worker result that carries telemetry
#: alongside the score triples (see _task_with_telemetry).
TELEMETRY_KEY = "__repro_worker_telemetry__"


def _worker_registries() -> list:
    """The registries this worker records into, deduplicated.

    A spawn-started worker rebinds its measure to the worker's default
    registry; a fork-started worker keeps the measure bound to a fork
    copy of the parent's (possibly custom) registry while arena/attach
    instruments hit the default one — so both must feed the delta.
    """
    from ..obs import get_registry

    registries = [get_registry()]
    measure_registry = getattr(_WORKER_STATE.get("measure"), "_registry", None)
    if measure_registry is not None and measure_registry is not registries[0]:
        registries.append(measure_registry)
    return registries


def _install_delta_sources() -> None:
    """(Re)build this worker's delta sources with a primed baseline.

    Called from the pool initializers: priming at initializer time means
    a fork-started worker's registries — fork copies that already carry
    the parent's pre-fork history — contribute only work recorded *in
    this process* to the deltas, never the parent's own.
    """
    from ..obs import DeltaSource

    _WORKER_STATE["delta_sources"] = [
        DeltaSource(registry, prime=True) for registry in _worker_registries()
    ]


def _worker_delta():
    """The merged registry delta since the last task, or ``None``."""
    from ..obs import DeltaSource, merge_snapshots

    sources = _WORKER_STATE.get("delta_sources")
    if sources is None:
        # No initializer ran (direct task invocation in tests): fall
        # back to unprimed sources whose first delta is the lifetime
        # snapshot.
        sources = _WORKER_STATE["delta_sources"] = [
            DeltaSource(registry) for registry in _worker_registries()
        ]
    deltas = [d for d in (source.delta() for source in sources) if d]
    if not deltas:
        return None
    merged = deltas[0]
    for delta in deltas[1:]:
        merged = merge_snapshots(merged, delta)
    return merged


def _task_with_telemetry(task, pairs):
    """Run ``task`` in a process worker, piggybacking telemetry home.

    Wraps the chunk in a span and returns ``{TELEMETRY_KEY: True,
    "triples": ..., "delta": ..., "trace": ...}``; the supervisor
    unwraps it, folds the registry delta into the parent registry under
    ``process="worker"`` labels, and stitches the span subtree under the
    dispatching span.  With observability disabled the envelope carries
    only the triples.
    """
    from ..obs import enabled as obs_enabled

    result = {TELEMETRY_KEY: True}
    if not obs_enabled():
        result["triples"] = task(pairs)
        return result
    from ..obs import get_tracer, span_payload

    with get_tracer().span(
        "parallel.worker-chunk", pairs=len(pairs), worker_pid=os.getpid()
    ) as span:
        result["triples"] = task(pairs)
    result["delta"] = _worker_delta()
    result["trace"] = span_payload(span)
    return result


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per available
    CPU; other negative values follow the scikit-learn convention
    ``available_cpus + 1 + n_jobs`` (floored at 1).

    "Available CPUs" is the scheduling affinity of this process
    (``os.sched_getaffinity``), not ``os.cpu_count()``: in containers and
    cgroup-limited CI runners the two disagree, and sizing a pool to the
    host's core count on a 1-core quota just multiplies context-switch
    overhead.  Platforms without affinity (macOS, Windows) fall back to
    ``os.cpu_count()``.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs must be a positive count, -1, or None")
    # Inside a cluster shard worker every pool is serial, whatever was
    # asked: the cluster already owns the parallelism (N shards × R
    # replicas), and nesting a per-CPU pool under each worker would fork
    # N·R·cpus processes.
    if in_cluster_worker():
        return 1
    cpus = available_cpus()
    if n_jobs < 0:
        return max(1, cpus + 1 + n_jobs)
    return n_jobs


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def chunk_pairs(
    pairs: Sequence[tuple[int, int]], n_workers: int, chunks_per_worker: int = 4
) -> list[list[tuple[int, int]]]:
    """Split the pair list into interleaved chunks for dispatch.

    Chunks are taken round-robin (``pairs[k::n_chunks]``) rather than as
    contiguous slices: pair costs correlate with trajectory length and
    neighbouring pairs share a row, so contiguous slabs would concentrate
    the expensive rows in a few unlucky workers.  Interleaving spreads
    them evenly while remaining fully deterministic.
    """
    if not pairs:
        return []
    n_chunks = min(len(pairs), max(1, n_workers * chunks_per_worker))
    return [list(pairs[k::n_chunks]) for k in range(n_chunks)]


def pair_costs(
    pairs: Sequence[tuple[int, int]],
    row_lengths: Sequence[int],
    col_lengths: Sequence[int],
) -> list[int]:
    """Estimated Eq. 10 cost per pair, from trajectory lengths.

    Scoring a pair evaluates both estimators at the union of both
    timestamp sets and takes grid-sized products, so the work scales
    with ``|T1| · |T2|`` (each estimator's bridge/kernel work grows with
    its own length *and* with the partner's query count).  The absolute
    scale is irrelevant — only the ratios matter for balancing.
    """
    return [max(1, row_lengths[i] * col_lengths[j]) for i, j in pairs]


def chunk_pairs_by_cost(
    pairs: Sequence[tuple[int, int]],
    costs: Sequence[int],
    n_workers: int,
    chunks_per_worker: int = 4,
) -> list[list[tuple[int, int]]]:
    """Partition pairs into chunks of near-equal *total cost*.

    Deterministic greedy LPT: pairs are taken in decreasing cost order
    (ties broken by original position, so the plan is reproducible and
    checkpoint-stable) and each goes to the currently lightest chunk.
    Within a chunk the original pair order is restored, keeping journals
    readable.  Every pair appears in exactly one chunk, so the assembled
    matrix is bitwise independent of the chunking policy.
    """
    if not pairs:
        return []
    n_chunks = min(len(pairs), max(1, n_workers * chunks_per_worker))
    order = sorted(range(len(pairs)), key=lambda k: (-costs[k], k))
    totals = [0] * n_chunks
    members: list[list[int]] = [[] for _ in range(n_chunks)]
    for k in order:
        target = min(range(n_chunks), key=lambda c: (totals[c], c))
        totals[target] += costs[k]
        members[target].append(k)
    return [[pairs[k] for k in sorted(m)] for m in members]


def make_executor(
    backend: str,
    n_workers: int,
    measure,
    gallery,
    queries,
    arena_handle=None,
    registry=None,
) -> tuple[Executor, str]:
    """Build the executor for ``backend`` (``"process"``/``"thread"``/``"auto"``).

    ``"auto"`` prefers processes (true parallelism for the CPU-bound
    scoring loop) and falls back to threads when the measure cannot cross
    a process boundary (e.g. a closure-based transition policy that does
    not pickle).  Returns the executor and the backend actually chosen.

    ``arena_handle`` switches the process backend to the shared-memory
    protocol: initargs carry ``(measure, handle)`` instead of the pickled
    collections, and workers attach to the arena in their initializer.
    When the process backend is unavailable and the caller asked for the
    arena, the fallback to pickling threads is *announced* — a one-line
    ``RuntimeWarning`` plus the ``repro_parallel_shm_fallback_total``
    counter — so a silent throughput regression stays diagnosable.
    """
    if backend not in ("auto", "process", "thread"):
        raise ValueError(
            f"backend must be 'auto', 'process' or 'thread', got {backend!r}"
        )
    if backend in ("auto", "process"):
        try:
            import pickle

            if arena_handle is not None:
                pickle.dumps(measure)
            else:
                pickle.dumps((measure, gallery, queries))
        except Exception:
            if backend == "process":
                raise
            if arena_handle is not None:
                _announce_shm_fallback("measure does not pickle", registry)
        else:
            if arena_handle is not None:
                return (
                    ProcessPoolExecutor(
                        max_workers=n_workers,
                        initializer=_init_worker_shm,
                        initargs=(measure, arena_handle),
                    ),
                    "process",
                )
            return (
                ProcessPoolExecutor(
                    max_workers=n_workers,
                    initializer=_init_worker,
                    initargs=(measure, gallery, queries),
                ),
                "process",
            )
    # Thread fallback: share the measure (its caches are lock-protected).
    # The arena is a no-op passthrough here — threads see the parent's
    # own trajectory lists.
    _init_worker(measure, gallery, queries)
    return ThreadPoolExecutor(max_workers=n_workers), "thread"


def _announce_shm_fallback(reason: str, registry=None) -> None:
    """One-line warning + counter when the shm backend silently degrades."""
    from ..obs import get_registry

    reg = registry if registry is not None else get_registry()
    reg.counter(
        "repro_parallel_shm_fallback_total",
        "Dispatches that fell back from the shared-memory arena to pickling",
    ).inc(reason=reason)
    warnings.warn(
        f"shared-memory arena requested but unusable ({reason}); "
        "falling back to the pickling path — expect serialization-bound "
        "parallel throughput",
        RuntimeWarning,
        stacklevel=3,
    )
