"""Zero-copy gallery broadcast through POSIX shared memory.

The process backend of :mod:`repro.parallel` originally shipped the
trajectory collections to every worker by pickling them into the pool
initializer — O(corpus bytes × workers) of serialization per ``pairwise``
call, which ``BENCH_throughput.json`` showed *dominating* the Eq. 10
scoring the pool was meant to parallelize.  The classic inference-stack
fix transfers directly: put the read-only corpus in shared memory
**once**, and ship only indices.

:class:`SharedTrajectoryArena` packs a gallery's ``(t, x, y)`` arrays
(plus per-trajectory offsets) into one ``multiprocessing.shared_memory``
block.  Workers attach at pool-initializer time and reconstruct
:class:`~repro.core.trajectory.Trajectory` *views* over the block with
:meth:`Trajectory.from_views` — ``np.ndarray(buffer=shm.buf)`` slices,
no per-point objects, no copies.  Because the packed arrays are the
exact float64 values the parent trajectories hold, every score computed
against a view is bitwise identical to the serial path.

Ownership protocol (leak safety)
--------------------------------
* The **parent owns** the segment: it creates the block, and it is the
  only process that ever calls :meth:`~SharedTrajectoryArena.close`
  (which unlinks).  ``close`` is idempotent, runs on context-manager
  exit, and is registered as a :func:`weakref.finalize` so even an
  abandoned arena is unlinked at garbage collection / interpreter exit.
* **Children attach** read-only and never unlink.  A child killed with
  ``SIGKILL`` leaves nothing behind: its mapping dies with it and the
  name belongs to the parent.
* The ``resource_tracker`` safety net stays intact: the parent's
  ``unlink`` unregisters the name exactly once, so no "leaked
  shared_memory" warning is emitted at shutdown, while a crashed
  *parent* still gets its segment reaped by the tracker.

The thread and serial rungs of the degradation ladder share the parent
address space, so there the arena is a no-op passthrough — the pool
plumbing simply uses the original trajectory lists.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from time import perf_counter
from typing import Sequence

import numpy as np

from ..core.trajectory import Trajectory
from ..obs import get_registry

__all__ = ["ArenaHandle", "ArenaView", "SharedTrajectoryArena"]

_FLOAT = np.float64
_ITEMSIZE = 8


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable description of a packed arena: everything a worker needs.

    The handle is tiny — a segment name, integer offsets and object ids —
    so shipping it through pool ``initargs`` costs bytes where pickling
    the trajectories themselves cost megabytes.
    """

    shm_name: str
    n_points: int
    #: Cumulative point offsets, one entry per trajectory plus the total.
    offsets: tuple[int, ...]
    object_ids: tuple[str | None, ...]
    #: First ``n_gallery`` trajectories are the gallery; the rest (if any)
    #: are the queries of a ``pairwise(gallery, queries=...)`` call.
    n_gallery: int
    has_queries: bool

    @property
    def n_trajectories(self) -> int:
        return len(self.offsets) - 1

    @property
    def nbytes(self) -> int:
        """Size of the shared block in bytes (xy plane + timestamps)."""
        return max(1, 3 * self.n_points * _ITEMSIZE)


def _layout(buf, handle: ArenaHandle) -> tuple[np.ndarray, np.ndarray]:
    """The ``(xy, t)`` arrays over a shared buffer, per the fixed layout.

    Layout: ``xy`` is ``(n_points, 2)`` float64 at byte 0, ``t`` is
    ``(n_points,)`` float64 immediately after.
    """
    n = handle.n_points
    xy = np.ndarray((n, 2), dtype=_FLOAT, buffer=buf, offset=0)
    t = np.ndarray((n,), dtype=_FLOAT, buffer=buf, offset=2 * n * _ITEMSIZE)
    return xy, t


def _views(buf, handle: ArenaHandle) -> list[Trajectory]:
    """Zero-copy :class:`Trajectory` views for every packed trajectory."""
    xy, t = _layout(buf, handle)
    out = []
    for k in range(handle.n_trajectories):
        lo, hi = handle.offsets[k], handle.offsets[k + 1]
        out.append(
            Trajectory.from_views(xy[lo:hi], t[lo:hi], object_id=handle.object_ids[k])
        )
    return out


class ArenaView:
    """A worker's attachment to an arena: trajectory views plus lifetime.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory` object
    referenced so the buffer backing the views stays mapped.  Never
    unlinks — the parent owns the segment.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: ArenaHandle):
        self._shm = shm
        self.handle = handle
        trajectories = _views(shm.buf, handle)
        self.gallery: list[Trajectory] = trajectories[: handle.n_gallery]
        self.queries: list[Trajectory] | None = (
            trajectories[handle.n_gallery :] if handle.has_queries else None
        )

    def close(self) -> None:
        """Drop this process's mapping (the views become invalid)."""
        self.gallery = []
        self.queries = None
        try:
            self._shm.close()
        except (BufferError, OSError):  # views still alive elsewhere
            pass

    def __repr__(self) -> str:
        return f"<ArenaView {self.handle.shm_name} n={self.handle.n_trajectories}>"


class SharedTrajectoryArena:
    """Parent-owned shared-memory block holding a packed trajectory corpus.

    Build with :meth:`pack`, hand :attr:`handle` to workers, have them
    :meth:`attach`.  Use as a context manager (or call :meth:`close`)
    to unlink; a :func:`weakref.finalize` backstop unlinks at garbage
    collection even if neither happens.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: ArenaHandle):
        self._shm = shm
        self.handle = handle
        self._closed = False
        self._packed_from: list[Trajectory] | None = None
        # Safety net: unlink even if the owner forgets to close (e.g. an
        # exception path that never reaches the finally).  finalize runs
        # at gc and, crucially, at interpreter exit.
        self._finalizer = weakref.finalize(
            self, _unlink_quietly, shm.name
        )

    # ------------------------------------------------------------------
    @classmethod
    def pack(
        cls,
        gallery: Sequence[Trajectory],
        queries: Sequence[Trajectory] | None = None,
        registry=None,
    ) -> "SharedTrajectoryArena":
        """Copy ``gallery`` (and ``queries``) into a fresh shared block.

        This is the one-time broadcast: one memcpy of the corpus arrays
        into the segment, after which any number of workers and calls
        reuse it by name.
        """
        t0 = perf_counter()
        everything = list(gallery) + (list(queries) if queries is not None else [])
        lengths = [len(t) for t in everything]
        offsets = tuple(np.concatenate([[0], np.cumsum(lengths)]).astype(int).tolist())
        n_points = offsets[-1] if offsets else 0
        handle_proto = ArenaHandle(
            shm_name="",
            n_points=int(n_points),
            offsets=offsets if offsets else (0,),
            object_ids=tuple(t.object_id for t in everything),
            n_gallery=len(gallery),
            has_queries=queries is not None,
        )
        shm = shared_memory.SharedMemory(create=True, size=handle_proto.nbytes)
        handle = ArenaHandle(
            shm_name=shm.name,
            n_points=handle_proto.n_points,
            offsets=handle_proto.offsets,
            object_ids=handle_proto.object_ids,
            n_gallery=handle_proto.n_gallery,
            has_queries=handle_proto.has_queries,
        )
        xy, t = _layout(shm.buf, handle)
        for k, traj in enumerate(everything):
            lo, hi = handle.offsets[k], handle.offsets[k + 1]
            xy[lo:hi] = traj.xy
            t[lo:hi] = traj.timestamps
        del xy, t  # release the buffer views so close() cannot raise
        arena = cls(shm, handle)
        arena.remember_source(gallery, queries)
        reg = registry if registry is not None else get_registry()
        reg.counter(
            "repro_parallel_shm_bytes_total",
            "Bytes packed into shared-memory trajectory arenas",
        ).inc(handle.nbytes)
        reg.histogram(
            "repro_parallel_shm_pack_seconds",
            "Wall seconds to pack a corpus into a shared-memory arena",
        ).observe(perf_counter() - t0)
        return arena

    @staticmethod
    def attach(handle: ArenaHandle, registry=None) -> ArenaView:
        """Attach to an existing arena by handle (worker side, no unlink)."""
        t0 = perf_counter()
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        view = ArenaView(shm, handle)
        reg = registry if registry is not None else get_registry()
        reg.histogram(
            "repro_parallel_shm_attach_seconds",
            "Wall seconds to attach a worker to a shared-memory arena",
        ).observe(perf_counter() - t0)
        return view

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    @property
    def closed(self) -> bool:
        return self._closed

    def matches(self, gallery: Sequence[Trajectory], queries=None) -> bool:
        """Whether this arena was packed from exactly these collections.

        Identity comparison, not equality: the persistent-pool path may
        only reuse an arena when the caller passes the *same* trajectory
        objects, because workers key their estimator caches on the packed
        copies.
        """
        if self._closed:
            return False
        if queries is None and self.handle.has_queries:
            return False
        if queries is not None and not self.handle.has_queries:
            return False
        everything = list(gallery) + (list(queries) if queries is not None else [])
        if len(everything) != self.handle.n_trajectories:
            return False
        if len(gallery) != self.handle.n_gallery:
            return False
        packed = getattr(self, "_packed_from", None)
        if packed is None:
            return False
        return len(packed) == len(everything) and all(
            a is b for a, b in zip(packed, everything)
        )

    def remember_source(self, gallery, queries=None) -> None:
        """Record the source objects so :meth:`matches` can test identity."""
        self._packed_from = list(gallery) + (
            list(queries) if queries is not None else []
        )

    def close(self) -> None:
        """Unlink the segment (idempotent; parent-only)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        try:
            self._shm.close()
        except (BufferError, OSError):
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedTrajectoryArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.nbytes}B"
        return (
            f"<SharedTrajectoryArena {self.handle.shm_name} "
            f"n={self.handle.n_trajectories} {state}>"
        )


def _unlink_quietly(name: str) -> None:
    """Finalizer body: unlink ``name`` if it still exists."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        shm.close()
    except (BufferError, OSError):
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
