"""Committed seed corpus for the differential verification matrix.

The corpus is generated deterministically from :data:`CORPUS_SEED` — the
same coordinates and timestamps on every machine, every run — so that
the verification report is reproducible and the documented tolerances in
``docs/CORRECTNESS.md`` stay meaningful.  It is deliberately tiny (a
10×10 grid, five gallery trajectories, three queries) because the oracle
in :mod:`repro.verify.oracle` is intentionally slow, yet it is shaped to
exercise every branch of the estimator:

* ``walker-a`` / ``walker-b`` — co-movers sharing *exact* timestamps, so
  the observation branch of Eq. 5 fires for both trajectories at once;
* ``sporadic`` — irregular gaps, driving the Markov bridge (Eq. 4) with
  asymmetric ``Δt``;
* ``late`` — a temporal span disjoint from every other trajectory, so
  the zero-outside-overlap case contributes exact zeros;
* ``diagonal`` — a steady mover whose speed samples give a clean
  Silverman bandwidth;
* the queries interleave the gallery's spans (``q-shadow`` offset by one
  second from ``walker-a``; ``q-sporadic`` straddling several gaps;
  ``q-brief`` a short burst inside everyone's span).

All timestamps are integer-valued floats so "shared timestamp" means
*bitwise* float equality — the condition ``Trajectory.index_of_time``
actually tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.grid import Grid
from ..core.noise import GaussianNoiseModel
from ..core.sts import STS
from ..core.trajectory import Trajectory

__all__ = ["CORPUS_SEED", "VerificationCorpus", "verification_corpus"]

#: The one committed seed.  Changing it changes every expected score in
#: the verification report — treat it like a file format version.
CORPUS_SEED = 7


@dataclass(frozen=True)
class VerificationCorpus:
    """Frozen bundle of grid, noise scale and trajectories."""

    grid: Grid
    sigma: float
    gallery: Tuple[Trajectory, ...]
    queries: Tuple[Trajectory, ...]
    seed: int = CORPUS_SEED

    def measure(self, registry=None) -> STS:
        """A *fresh* production measure over this corpus.

        A new instance per call keeps differential runs independent —
        no path ever observes another path's warm caches.
        """
        return STS(self.grid,
                   noise_model=GaussianNoiseModel(self.sigma),
                   registry=registry)

    def fingerprint(self) -> str:
        """Stable sha256 over the corpus geometry and parameters."""
        digest = hashlib.sha256()
        digest.update(f"seed={self.seed};sigma={self.sigma!r};".encode())
        digest.update(
            f"grid={self.grid.min_x!r},{self.grid.min_y!r},"
            f"{self.grid.max_x!r},{self.grid.max_y!r},"
            f"{self.grid.cell_size!r};".encode())
        for label, group in (("gallery", self.gallery), ("queries", self.queries)):
            digest.update(label.encode())
            for tra in group:
                digest.update(np.ascontiguousarray(tra.xy).tobytes())
                digest.update(np.ascontiguousarray(tra.timestamps).tobytes())
        return digest.hexdigest()


def _walk(rng: np.random.Generator, start, step, times, jitter=0.6):
    """A drifting walk: ``start + i*step`` plus seeded Gaussian jitter."""
    times = np.asarray(times, dtype=float)
    n = len(times)
    base = np.asarray(start, dtype=float) + np.outer(np.arange(n), step)
    pts = base + rng.normal(scale=jitter, size=(n, 2))
    # Keep everything strictly inside the grid so cell_of never clamps.
    pts = np.clip(pts, 0.5, 29.5)
    return pts[:, 0].copy(), pts[:, 1].copy(), times


def verification_corpus(seed: int = CORPUS_SEED) -> VerificationCorpus:
    """Build the committed corpus (deterministic for a given ``seed``)."""
    rng = np.random.default_rng(seed)
    grid = Grid(0.0, 0.0, 30.0, 30.0, cell_size=3.0)
    sigma = 3.0

    def tra(object_id, start, step, times, jitter=0.6):
        xs, ys, ts = _walk(rng, start, step, times, jitter)
        return Trajectory.from_arrays(xs, ys, ts, object_id=object_id)

    gallery = (
        tra("walker-a", (4.0, 4.0), (1.1, 0.9), [0.0, 8.0, 16.0, 24.0, 32.0]),
        # Same exact timestamps as walker-a: the co-mover pair.
        tra("walker-b", (5.0, 4.5), (1.0, 1.0), [0.0, 8.0, 16.0, 24.0, 32.0]),
        tra("sporadic", (20.0, 6.0), (-0.8, 1.2), [2.0, 5.0, 21.0, 44.0]),
        # Disjoint temporal span: zero overlap with everything above.
        tra("late", (8.0, 22.0), (1.3, -0.7), [100.0, 110.0, 122.0, 131.0]),
        tra("diagonal", (2.0, 25.0), (1.2, -1.1), [0.0, 10.0, 20.0, 30.0, 40.0]),
    )
    queries = (
        tra("q-shadow", (4.5, 4.2), (1.1, 0.9), [1.0, 9.0, 17.0, 25.0]),
        tra("q-sporadic", (18.0, 8.0), (-0.5, 1.0), [4.0, 18.0, 37.0, 52.0]),
        tra("q-brief", (12.0, 12.0), (0.9, 0.4), [12.0, 15.0, 19.0], jitter=0.3),
    )
    return VerificationCorpus(grid=grid, sigma=sigma,
                              gallery=gallery, queries=queries, seed=seed)
