"""Differential verification: oracle, metamorphic relations, path matrix.

Three independent correctness nets over the same committed seed corpus:

* :mod:`~repro.verify.oracle` — a deliberately slow, dependency-light
  transcription of Eqs. 3–10 that serves as ground truth;
* :mod:`~repro.verify.relations` — executable metamorphic relations the
  paper guarantees by construction (symmetry, [0, 1] range, time-shift
  invariance, STP normalization, zero outside overlap, anytime bounds,
  valid degradation rungs);
* :mod:`~repro.verify.diffrunner` — the cross-path equivalence matrix:
  every shipped execution path scored on the corpus and compared bitwise
  (production paths) or within documented tolerance (the oracle).

Entry points: :func:`run_verification` from Python, ``repro verify``
from the CLI.  Policy and derivations live in ``docs/CORRECTNESS.md``.
"""

from .corpus import CORPUS_SEED, VerificationCorpus, verification_corpus
from .diffrunner import (
    PATHS,
    CheckResult,
    PathSpec,
    VerifyReport,
    run_verification,
    ulp_distance,
)
from .oracle import ORACLE_ATOL, OracleSTS
from .relations import RELATIONS, Relation, RelationResult, run_relations

__all__ = [
    "CORPUS_SEED",
    "VerificationCorpus",
    "verification_corpus",
    "OracleSTS",
    "ORACLE_ATOL",
    "RELATIONS",
    "Relation",
    "RelationResult",
    "run_relations",
    "PATHS",
    "PathSpec",
    "CheckResult",
    "VerifyReport",
    "run_verification",
    "ulp_distance",
]
