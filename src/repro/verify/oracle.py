"""Reference oracle for STS: Eqs. 3–10 transcribed from the paper.

:class:`OracleSTS` is the ground truth the differential runner compares
every production execution path against.  It is *deliberately* slow and
plain:

* dense ``|R|``-vectors everywhere — no pruning, no sparsification, no
  FFT convolution;
* no caching or memoization of any kind: every query recomputes its
  noise distributions, bandwidth and transition weights from scratch;
* the KDE kernel mean is the exact ``O(|S|)`` sum of Eq. 6 — never the
  interpolation table :class:`~repro.core.speed.KDESpeedModel` switches
  to on large batches;
* the Gaussian noise of Eq. 3 is evaluated over the *whole* grid — no
  4σ truncation of the support.

The only dependencies are numpy and the passive data types
(:class:`~repro.core.grid.Grid`, :class:`~repro.core.trajectory.Trajectory`);
none of the optimized estimator machinery is imported.  Each equation is
its own small method so the transcription can be checked against
PAPER.md line by line.

Because the oracle keeps the full (untruncated, unsparsified) supports
and the exact kernel sums, its scores differ from the production
measure's by the mass the production path deliberately discards — the
4σ noise truncation, the ``1e-15`` sparsification and the KDE lookup
table.  :data:`ORACLE_ATOL` is the documented absolute tolerance for
that gap (see ``docs/CORRECTNESS.md`` for the derivation); the
differential runner asserts every path agrees with the oracle within it.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.grid import Grid
from ..core.trajectory import Trajectory

__all__ = ["OracleSTS", "ORACLE_ATOL"]

#: Absolute tolerance for production-vs-oracle score comparisons.  The
#: production path truncates the Eq. 3 noise support at 4σ (discarding
#: ~3.4e-4 of 2-D Gaussian mass before renormalizing), drops sparse
#: entries below 1e-15 and serves large KDE batches from a 2048-point
#: interpolation table; each effect perturbs a co-location term by
#: O(1e-4) and Eq. 10 averages the terms, so scores agree to ~1e-4.
#: Pinned with an order of magnitude of headroom.
ORACLE_ATOL = 1e-3

_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


class OracleSTS:
    """Dependency-light reference implementation of the STS measure.

    Parameters
    ----------
    grid:
        Spatial partition ``R`` (Section IV-A).
    sigma:
        Standard deviation of the Gaussian location noise (Eq. 3).
    squared:
        Use the standard Gaussian exponent ``d²/2σ²`` (default, matching
        :class:`~repro.core.noise.GaussianNoiseModel`); ``False``
        reproduces the paper's literal printed ``d/2σ²``.
    bandwidth_floor:
        Lower bound on the Silverman bandwidth, mirroring the degenerate
        guard of :func:`~repro.core.speed.silverman_bandwidth` so both
        implementations describe the same model on valid corpora.
    """

    name = "STS-oracle"
    higher_is_better = True

    def __init__(self, grid: Grid, sigma: float, squared: bool = True,
                 bandwidth_floor: float = 1e-3):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.grid = grid
        self.sigma = float(sigma)
        self.squared = bool(squared)
        self.bandwidth_floor = float(bandwidth_floor)

    # ------------------------------------------------------------------
    # Eq. 3 — location-noise distribution over grid cells
    # ------------------------------------------------------------------
    def noise_distribution(self, x: float, y: float) -> np.ndarray:
        """``f(r, ℓ)``: Gaussian over *all* cell centers, normalized."""
        centers = self.grid.centers()
        dist = np.hypot(centers[:, 0] - x, centers[:, 1] - y)
        if self.squared:
            weights = np.exp(-(dist**2) / (2.0 * self.sigma**2))
        else:
            weights = np.exp(-dist / (2.0 * self.sigma**2))
        return weights / weights.sum()

    # ------------------------------------------------------------------
    # Eq. 6 — personalized speed density (exact KDE, Silverman bandwidth)
    # ------------------------------------------------------------------
    def bandwidth(self, trajectory: Trajectory) -> float:
        """Silverman's rule ``h = (4 σ̂⁵ / (3 |S|))^{1/5}`` over the speeds."""
        samples = trajectory.speeds()
        n = len(samples)
        if n == 0:
            return self.bandwidth_floor
        sigma = float(samples.std())
        if n < 2 or sigma == 0.0:
            scale = float(np.abs(samples).mean()) if n else 0.0
            return max(self.bandwidth_floor, 0.05 * scale)
        return max(self.bandwidth_floor, (4.0 * sigma**5 / (3.0 * n)) ** 0.2)

    def transition_weight(self, speeds: np.ndarray, samples: np.ndarray,
                          h: float) -> np.ndarray:
        """Eq. 7: ``h · Q̂(v) = (1/|S|) Σ_s K((v - v_s)/h)`` — exact sum."""
        v = np.asarray(speeds, dtype=float)
        if samples.size == 0:
            z = v / h
            return _INV_SQRT_2PI * np.exp(-0.5 * z * z)
        z = (v[..., None] - samples) / h
        return (_INV_SQRT_2PI * np.exp(-0.5 * z * z)).mean(axis=-1)

    # ------------------------------------------------------------------
    # Eq. 4–5 — spatial-temporal probability
    # ------------------------------------------------------------------
    def stp(self, trajectory: Trajectory, t: float) -> np.ndarray:
        """``STP(·, t, Tra)`` as a dense ``|R|``-vector (Eq. 5).

        Case 1 (``t`` is an observation time): the noise distribution of
        that observation.  Case 2 (strictly between two observations):
        the Markov-bridge interpolation of Eq. 4 over every cell pair.
        Case 3 (outside the observed span): zero everywhere.
        """
        t = float(t)
        ts = trajectory.timestamps
        if len(trajectory) == 0 or t < ts[0] or t > ts[-1]:
            return np.zeros(self.grid.n_cells)
        idx = trajectory.index_of_time(t)
        if idx is not None:
            point = trajectory[idx]
            return self.noise_distribution(point.x, point.y)

        lo, hi = trajectory.bracketing_indices(t)  # type: ignore[misc]
        p_lo, p_hi = trajectory[lo], trajectory[hi]
        f_lo = self.noise_distribution(p_lo.x, p_lo.y)
        f_hi = self.noise_distribution(p_hi.x, p_hi.y)
        dt1 = t - p_lo.t
        dt2 = p_hi.t - t

        centers = self.grid.centers()
        # Pairwise center distances: D[j, r] = dis(c_j, c_r).
        diff = centers[:, None, :] - centers[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        samples = trajectory.speeds()
        h = self.bandwidth(trajectory)
        # forward(r)  = Σ_j f(r_j, ℓ_i)     · h·Q̂(dis(c_j, c_r)/dt1)
        # backward(r) = Σ_k f(r_k, ℓ_{i+1}) · h·Q̂(dis(c_r, c_k)/dt2)
        forward = f_lo @ self.transition_weight(dist / dt1, samples, h)
        backward = self.transition_weight(dist / dt2, samples, h) @ f_hi
        unnorm = forward * backward
        total = unnorm.sum()
        if total <= 0.0 or not np.isfinite(total):
            # Same 0/0 resolution as the production estimator: mass at
            # the time-weighted linear interpolation of the bracket.
            w = dt1 / (dt1 + dt2)
            out = np.zeros(self.grid.n_cells)
            out[self.grid.cell_of(p_lo.x + w * (p_hi.x - p_lo.x),
                                  p_lo.y + w * (p_hi.y - p_lo.y))] = 1.0
            return out
        return unnorm / total

    # ------------------------------------------------------------------
    # Eq. 8–9 — co-location probability
    # ------------------------------------------------------------------
    def colocation(self, tra1: Trajectory, tra2: Trajectory, t: float) -> float:
        """``CP(t) = Σ_r STP(r, t, Tra₁) · STP(r, t, Tra₂)``."""
        return float(np.dot(self.stp(tra1, t), self.stp(tra2, t)))

    # ------------------------------------------------------------------
    # Eq. 10 — the STS measure
    # ------------------------------------------------------------------
    def similarity(self, tra1: Trajectory, tra2: Trajectory) -> float:
        """``( Σ_i CP(t_i) + Σ_j CP(t'_j) ) / ( |Tra| + |Tra'| )``.

        A timestamp shared by both trajectories is counted once per
        trajectory — once in each sum, with the denominator
        ``|Tra| + |Tra'|`` — exactly as the paper defines the average.
        """
        if len(tra1) == 0 or len(tra2) == 0:
            raise ValueError("STS is undefined for empty trajectories")
        total = 0.0
        for t in tra1.timestamps:
            total += self.colocation(tra1, tra2, float(t))
        for t in tra2.timestamps:
            total += self.colocation(tra1, tra2, float(t))
        return total / (len(tra1) + len(tra2))

    def score(self, tra1: Trajectory, tra2: Trajectory) -> float:
        """Alias for :meth:`similarity` (the measure-protocol entry point)."""
        return self.similarity(tra1, tra2)

    def pairwise(self, gallery, queries=None) -> np.ndarray:
        """Score matrix with the same orientation as ``STS.pairwise``."""
        if queries is None:
            n = len(gallery)
            out = np.zeros((n, n))
            for i in range(n):
                for j in range(i, n):
                    out[i, j] = out[j, i] = self.similarity(gallery[i], gallery[j])
            return out
        out = np.zeros((len(queries), len(gallery)))
        for i, q in enumerate(queries):
            for j, g in enumerate(gallery):
                out[i, j] = self.similarity(q, g)
        return out

    def __repr__(self) -> str:
        return f"OracleSTS(grid={self.grid!r}, sigma={self.sigma})"
