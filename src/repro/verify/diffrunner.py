"""Differential matrix runner: every execution path against every other.

The runner scores the committed corpus's ``queries × gallery`` matrix
through each shipped execution path and compares the results:

* every *production* path (batch, thread/process parallel, shm,
  persistent pool, anytime-unbounded, cluster 2×2) must be **bitwise**
  identical to the serial baseline — that is what their docstrings
  promise, and ulp drift of zero is the only acceptable outcome;
* the *oracle* (:mod:`repro.verify.oracle`) is compared within the
  documented :data:`~repro.verify.oracle.ORACLE_ATOL`, since production
  deliberately truncates/sparsifies mass the oracle keeps.

The rectangular ``queries × gallery`` matrix (rather than the gallery
self-matrix) is chosen deliberately: for distinct queries every path
scores each ``(query, gallery)`` cell through the identical
``similarity(q, g)`` call, so bitwise equality is well-defined.  The
self-matrix is *not* bitwise stable across paths — the serial path
mirrors each unordered pair while the cluster scores both orientations,
which agree only to round-off (see ``docs/CORRECTNESS.md``).

Results come back as a :class:`VerifyReport` (JSON + markdown) with
per-check pass/fail, max absolute drift and max ulp distance, and are
counted into ``repro_verify_checks_total{path,relation,outcome}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.service import ClusterService
from ..obs.registry import get_registry
from ..parallel.sts import ParallelSTS
from ..serving.anytime import anytime_similarity
from .corpus import VerificationCorpus, verification_corpus
from .oracle import ORACLE_ATOL, OracleSTS
from .relations import RelationResult, run_relations

__all__ = [
    "PathSpec", "PATHS", "CheckResult", "VerifyReport", "run_verification",
    "ulp_distance",
]


def ulp_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Max distance between two float64 arrays in units of last place.

    Uses the ordered-integer mapping of IEEE-754 doubles (sign-magnitude
    int64 folded so the mapping is monotone and ±0.0 coincide); equal
    arrays give 0, adjacent representable doubles give 1.
    """
    ai = np.asarray(a, dtype=np.float64).view(np.int64)
    bi = np.asarray(b, dtype=np.float64).view(np.int64)
    lo = np.iinfo(np.int64).min
    ai = np.where(ai >= 0, ai, lo - ai)
    bi = np.where(bi >= 0, bi, lo - bi)
    if ai.size == 0:
        return 0
    # uint64 absolute difference avoids int64 overflow across signs.
    diff = np.where(ai >= bi, ai - bi, bi - ai).astype(np.uint64)
    return int(diff.max())


# ----------------------------------------------------------------------
# Execution paths
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PathSpec:
    """One way of computing the corpus score matrix.

    ``tolerance=None`` claims bitwise equality with the serial baseline;
    a float is the documented absolute tolerance.
    """

    name: str
    description: str
    run: Callable[[VerificationCorpus], np.ndarray]
    tolerance: Optional[float] = None


def _run_serial(corpus: VerificationCorpus) -> np.ndarray:
    measure = corpus.measure()
    out = np.zeros((len(corpus.queries), len(corpus.gallery)))
    for i, q in enumerate(corpus.queries):
        for j, g in enumerate(corpus.gallery):
            out[i, j] = measure.similarity(q, g)
    return out


def _run_batch(corpus: VerificationCorpus) -> np.ndarray:
    return corpus.measure().pairwise(list(corpus.gallery),
                                     list(corpus.queries))


def _run_parallel_thread(corpus: VerificationCorpus) -> np.ndarray:
    return corpus.measure().pairwise(list(corpus.gallery),
                                     list(corpus.queries),
                                     n_jobs=2, backend="thread")


def _run_parallel_process(corpus: VerificationCorpus) -> np.ndarray:
    return corpus.measure().pairwise(list(corpus.gallery),
                                     list(corpus.queries),
                                     n_jobs=2, backend="process", shm=False)


def _run_shm(corpus: VerificationCorpus) -> np.ndarray:
    return corpus.measure().pairwise(list(corpus.gallery),
                                     list(corpus.queries),
                                     n_jobs=2, backend="process", shm=True)


def _run_pool(corpus: VerificationCorpus) -> np.ndarray:
    with ParallelSTS(corpus.measure(), n_jobs=2, backend="process",
                     persistent=True) as pool:
        return pool.pairwise(list(corpus.gallery), list(corpus.queries))


def _run_anytime(corpus: VerificationCorpus) -> np.ndarray:
    measure = corpus.measure()
    out = np.zeros((len(corpus.queries), len(corpus.gallery)))
    for i, q in enumerate(corpus.queries):
        for j, g in enumerate(corpus.gallery):
            score = anytime_similarity(measure, q, g)
            if not score.completed:
                raise AssertionError(
                    f"unbounded anytime run incomplete for "
                    f"({q.object_id}, {g.object_id})")
            out[i, j] = score.value
    return out


def _run_cluster(corpus: VerificationCorpus) -> np.ndarray:
    measure = corpus.measure()
    gallery = list(corpus.gallery)
    with ClusterService(measure, gallery, n_shards=2, n_replicas=2) as svc:
        return measure.pairwise(gallery, list(corpus.queries), cluster=svc)


def _run_oracle(corpus: VerificationCorpus) -> np.ndarray:
    oracle = OracleSTS(corpus.grid, corpus.sigma)
    return oracle.pairwise(corpus.gallery, corpus.queries)


#: The path registry.  A plain dict on purpose: tests monkeypatch broken
#: entries in to prove the runner catches divergence.
PATHS: Dict[str, PathSpec] = {
    spec.name: spec
    for spec in (
        PathSpec("serial", "nested similarity() loop (baseline)",
                 _run_serial),
        PathSpec("batch", "STS.pairwise, single process", _run_batch),
        PathSpec("parallel-thread", "STS.pairwise n_jobs=2 backend=thread",
                 _run_parallel_thread),
        PathSpec("parallel-process", "STS.pairwise n_jobs=2 backend=process",
                 _run_parallel_process),
        PathSpec("shm", "process backend with shared-memory gallery",
                 _run_shm),
        PathSpec("pool", "persistent ParallelSTS worker pool", _run_pool),
        PathSpec("anytime", "anytime_similarity with unbounded budget",
                 _run_anytime),
        PathSpec("cluster-2x2", "2-shard 2-replica ClusterService",
                 _run_cluster),
        PathSpec("oracle", "slow dense reference (Eqs. 3-10)",
                 _run_oracle, tolerance=ORACLE_ATOL),
    )
}

BASELINE_PATH = "serial"


# ----------------------------------------------------------------------
# Report types
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CheckResult:
    """One row of the verification matrix."""

    kind: str  #: "path" (equivalence check) or "relation"
    name: str  #: path name or relation name
    case: str  #: what was compared / which corpus case
    passed: bool
    max_abs_diff: float = 0.0
    max_ulp: Optional[int] = None  #: only meaningful for path checks
    tolerance: Optional[float] = None  #: None means "bitwise"
    detail: str = ""


@dataclass(frozen=True)
class VerifyReport:
    """Machine-readable outcome of one differential verification run."""

    fingerprint: str
    seed: int
    checks: Tuple[CheckResult, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.checks if not c.passed)

    def to_json(self) -> str:
        """The report as indented JSON (the ``--report-out x.json`` format)."""
        payload = {
            "corpus": {"fingerprint": self.fingerprint, "seed": self.seed},
            "passed": self.passed,
            "n_checks": len(self.checks),
            "n_failed": self.n_failed,
            "checks": [
                {
                    "kind": c.kind,
                    "name": c.name,
                    "case": c.case,
                    "passed": c.passed,
                    "max_abs_diff": c.max_abs_diff,
                    "max_ulp": c.max_ulp,
                    "tolerance": c.tolerance,
                    "detail": c.detail,
                }
                for c in self.checks
            ],
        }
        return json.dumps(payload, indent=2, allow_nan=True)

    def to_markdown(self) -> str:
        """The report as two markdown tables (paths, then relations)."""
        lines = [
            "# Differential verification report",
            "",
            f"- corpus seed: `{self.seed}`",
            f"- corpus fingerprint: `{self.fingerprint}`",
            f"- checks: {len(self.checks)} total, {self.n_failed} failed",
            f"- verdict: {'**PASS**' if self.passed else '**FAIL**'}",
            "",
            "## Path equivalence (vs serial baseline)",
            "",
            "| path | tolerance | max abs diff | max ulp | result |",
            "|---|---|---|---|---|",
        ]
        for c in self.checks:
            if c.kind != "path":
                continue
            tol = "bitwise" if c.tolerance is None else f"{c.tolerance:g}"
            ulp = "-" if c.max_ulp is None else str(c.max_ulp)
            verdict = "pass" if c.passed else f"**FAIL** {c.detail}".rstrip()
            lines.append(f"| {c.name} | {tol} | {c.max_abs_diff:.3e} "
                         f"| {ulp} | {verdict} |")
        lines += [
            "",
            "## Metamorphic relations",
            "",
            "| relation | case | drift | result |",
            "|---|---|---|---|",
        ]
        for c in self.checks:
            if c.kind != "relation":
                continue
            verdict = "pass" if c.passed else f"**FAIL** {c.detail}".rstrip()
            lines.append(f"| {c.name} | {c.case} | {c.max_abs_diff:.3e} "
                         f"| {verdict} |")
        lines.append("")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------

def _compare(name: str, matrix: np.ndarray, baseline: np.ndarray,
             tolerance: Optional[float]) -> CheckResult:
    case = f"{name} vs {BASELINE_PATH}"
    if matrix is None or np.asarray(matrix).shape != baseline.shape:
        shape = None if matrix is None else np.asarray(matrix).shape
        return CheckResult("path", name, case, False,
                           max_abs_diff=float("inf"),
                           tolerance=tolerance,
                           detail=f"shape {shape} != {baseline.shape}")
    matrix = np.asarray(matrix, dtype=float)
    if not np.isfinite(matrix).all():
        return CheckResult("path", name, case, False,
                           max_abs_diff=float("inf"), tolerance=tolerance,
                           detail="non-finite cells in result")
    diff = float(np.abs(matrix - baseline).max()) if matrix.size else 0.0
    ulp = ulp_distance(matrix, baseline)
    if tolerance is None:
        passed = ulp == 0
        detail = "" if passed else f"max ulp drift {ulp}"
    else:
        passed = diff <= tolerance
        detail = "" if passed else f"abs diff {diff:.3e} > {tolerance:g}"
    return CheckResult("path", name, case, passed, max_abs_diff=diff,
                       max_ulp=ulp, tolerance=tolerance, detail=detail)


def run_verification(paths: Optional[Sequence[str]] = None,
                     relations: Optional[Sequence[str]] = None,
                     corpus: Optional[VerificationCorpus] = None,
                     registry=None) -> VerifyReport:
    """Run the path-equivalence matrix and the metamorphic relations.

    ``paths`` / ``relations`` select subsets by name (``None`` = all;
    an empty sequence skips that half entirely).  Unknown names raise
    :class:`ValueError`.  Every check increments
    ``repro_verify_checks_total{path,relation,outcome}``.
    """
    if corpus is None:
        corpus = verification_corpus()
    if registry is None:
        registry = get_registry()
    counter = registry.counter(
        "repro_verify_checks_total",
        "Differential verification checks by path, relation and outcome.")

    if paths is None:
        selected_paths = [n for n in PATHS if n != BASELINE_PATH]
    else:
        unknown = sorted(set(paths) - set(PATHS))
        if unknown:
            raise ValueError(f"unknown path(s) {unknown}; "
                             f"available: {sorted(PATHS)}")
        selected_paths = [n for n in paths if n != BASELINE_PATH]

    checks: List[CheckResult] = []

    if selected_paths or paths is None:
        baseline = PATHS[BASELINE_PATH].run(corpus)
        for name in selected_paths:
            spec = PATHS[name]
            try:
                matrix = spec.run(corpus)
            except Exception as exc:  # a crashing path is a failing path
                result = CheckResult("path", name,
                                     f"{name} vs {BASELINE_PATH}", False,
                                     max_abs_diff=float("inf"),
                                     tolerance=spec.tolerance,
                                     detail=f"{type(exc).__name__}: {exc}")
            else:
                result = _compare(name, matrix, baseline, spec.tolerance)
            checks.append(result)
            counter.child(path=name, relation="equivalence",
                          outcome="pass" if result.passed else "fail").inc()

    for rel in run_relations(corpus, names=relations):
        result = CheckResult("relation", rel.relation, rel.case, rel.passed,
                             max_abs_diff=rel.drift, detail=rel.detail)
        checks.append(result)
        counter.child(path=BASELINE_PATH, relation=rel.relation,
                      outcome="pass" if rel.passed else "fail").inc()

    return VerifyReport(fingerprint=corpus.fingerprint(), seed=corpus.seed,
                        checks=tuple(checks))
