"""Executable metamorphic relations for the STS measure.

Each relation is a property the paper guarantees by construction, turned
into a check against the *production* estimator on the committed corpus.
Where the oracle (:mod:`repro.verify.oracle`) answers "does the
optimized code compute the same numbers as the equations", the relations
answer "does it still satisfy the invariants those equations imply" —
two independent nets for the same fish.

Catalogue (equation references are to PAPER.md):

``symmetry``
    STS(Tra, Tra') = STS(Tra', Tra).  Eq. 10 is symmetric term by term;
    only floating-point summation order differs, so equality holds to
    round-off (1e-12 relative).
``unit_range``
    0 ≤ STS ≤ 1.  Each CP (Eq. 9) is an inner product of two
    sub-stochastic vectors, hence in [0, 1]; Eq. 10 averages them.
``time_shift``
    Translating *both* trajectories by the same Δt leaves STS unchanged:
    Eqs. 3–10 only consume time differences.  Not bitwise — shifted
    floats round differently — so checked to 1e-9 absolute.
``stp_norm``
    Eq. 5: inside the observed span the STP vector is a distribution
    (non-negative, sums to 1); at an exact observation time it *is* the
    Eq. 3 noise distribution (bitwise); outside the span it is empty.
``zero_overlap``
    Disjoint temporal spans ⇒ every Eq. 10 term is outside the other
    trajectory's span ⇒ STS is exactly 0.0 (bitwise).
``anytime_bounds``
    A budget-truncated evaluation must bracket the exact score
    (``lower ≤ exact ≤ upper``), and an unbounded one must be complete
    and bitwise equal to :meth:`STS.similarity`.
``coarse_rungs``
    Degradation rungs are valid lower-fidelity answers: a coarsened-grid
    score is still a score in [0, 1], and the filter-only interval
    contains the exact full-fidelity score.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.trajectory import Trajectory
from ..serving.anytime import anytime_similarity, filter_only_estimate
from ..serving.budget import Budget
from ..serving.ladder import DeadlineScorer
from .corpus import VerificationCorpus, verification_corpus

__all__ = ["RelationResult", "Relation", "RELATIONS", "run_relations"]


@dataclass(frozen=True)
class RelationResult:
    """Outcome of one relation instance on one corpus case."""

    relation: str
    case: str
    passed: bool
    drift: float  #: worst violation magnitude observed (0.0 when clean)
    detail: str = ""


@dataclass(frozen=True)
class Relation:
    name: str
    equation: str  #: PAPER.md equation(s) the relation is derived from
    description: str
    run: Callable[[VerificationCorpus], List[RelationResult]]


def _result(relation: str, case: str, violation: float, tol: float,
            detail: str = "") -> RelationResult:
    violation = float(violation)  # plain float: keeps `passed` JSON-safe
    ok = bool(math.isfinite(violation) and violation <= tol)
    return RelationResult(relation=relation, case=case, passed=ok,
                          drift=violation, detail=detail)


def _all_pairs(corpus: VerificationCorpus):
    everything = corpus.gallery + corpus.queries
    for i, a in enumerate(everything):
        for b in everything[i + 1:]:
            yield a, b


def _shifted(tra: Trajectory, delta: float) -> Trajectory:
    xy = tra.xy
    return Trajectory.from_arrays(xy[:, 0].copy(), xy[:, 1].copy(),
                                  tra.timestamps + delta,
                                  object_id=tra.object_id)


# ----------------------------------------------------------------------
# The relations
# ----------------------------------------------------------------------

def _run_symmetry(corpus: VerificationCorpus) -> List[RelationResult]:
    measure = corpus.measure()
    out = []
    for a, b in _all_pairs(corpus):
        ab = measure.similarity(a, b)
        ba = measure.similarity(b, a)
        scale = max(abs(ab), abs(ba), 1e-300)
        out.append(_result("symmetry", f"{a.object_id}~{b.object_id}",
                           abs(ab - ba) / scale, 1e-12,
                           detail=f"ab={ab!r} ba={ba!r}"))
    return out


def _run_unit_range(corpus: VerificationCorpus) -> List[RelationResult]:
    measure = corpus.measure()
    everything = corpus.gallery + corpus.queries
    out = []
    for i, a in enumerate(everything):
        for b in everything[i:]:  # include self-similarity
            s = measure.similarity(a, b)
            violation = max(0.0 - s, s - 1.0, 0.0)
            if not math.isfinite(s):
                violation = math.inf
            out.append(_result("unit_range", f"{a.object_id}~{b.object_id}",
                               violation, 0.0, detail=f"score={s!r}"))
    return out


def _run_time_shift(corpus: VerificationCorpus) -> List[RelationResult]:
    measure = corpus.measure()
    delta = 977.0
    out = []
    for a, b in _all_pairs(corpus):
        base = measure.similarity(a, b)
        shifted = measure.similarity(_shifted(a, delta), _shifted(b, delta))
        out.append(_result("time_shift", f"{a.object_id}~{b.object_id}",
                           abs(base - shifted), 1e-9,
                           detail=f"base={base!r} shifted={shifted!r} dt={delta}"))
    return out


def _run_stp_norm(corpus: VerificationCorpus) -> List[RelationResult]:
    measure = corpus.measure()
    out = []
    for tra in corpus.gallery + corpus.queries:
        estimator = measure.stp_for(tra)
        ts = tra.timestamps

        # Interior times: mid-segment plus each observation time.
        probes = list(ts) + [float(lo + hi) / 2.0
                             for lo, hi in zip(ts[:-1], ts[1:])]
        worst_sum = 0.0
        worst_neg = 0.0
        for t in probes:
            cells, probs = estimator.stp(float(t))
            if probs.size:
                worst_sum = max(worst_sum, abs(probs.sum() - 1.0))
                worst_neg = max(worst_neg, float(max(0.0, -probs.min())))
            else:
                worst_sum = math.inf  # empty inside the span
        out.append(_result("stp_norm", f"{tra.object_id}:sum-to-1",
                           worst_sum, 1e-9))
        out.append(_result("stp_norm", f"{tra.object_id}:non-negative",
                           worst_neg, 0.0))

        # Observation branch degenerates to the Eq. 3 noise distribution.
        point = tra[0]
        cells, probs = estimator.stp(float(point.t))
        ref_cells, ref_probs = measure.noise_model.cell_distribution(
            measure.grid, point.x, point.y)
        obs_exact = (np.array_equal(cells, ref_cells)
                     and np.array_equal(probs, ref_probs))
        out.append(_result("stp_norm", f"{tra.object_id}:observation-branch",
                           0.0 if obs_exact else math.inf, 0.0,
                           detail="stp(t_obs) != noise cell_distribution"
                           if not obs_exact else ""))

        # Outside the span: empty support.
        before_cells, before_probs = estimator.stp(float(ts[0]) - 5.0)
        after_cells, after_probs = estimator.stp(float(ts[-1]) + 5.0)
        empty = before_probs.size == 0 and after_probs.size == 0
        out.append(_result("stp_norm", f"{tra.object_id}:outside-span",
                           0.0 if empty else math.inf, 0.0))
    return out


def _run_zero_overlap(corpus: VerificationCorpus) -> List[RelationResult]:
    measure = corpus.measure()
    late = next(t for t in corpus.gallery if t.object_id == "late")
    out = []
    for other in corpus.gallery + corpus.queries:
        if other.object_id == "late":
            continue
        overlap = (min(late.end_time, other.end_time)
                   - max(late.start_time, other.start_time))
        if overlap >= 0:  # corpus invariant: late is disjoint from all
            out.append(RelationResult("zero_overlap",
                                      f"late~{other.object_id}", False,
                                      math.inf, "corpus spans overlap"))
            continue
        s = measure.similarity(late, other)
        out.append(_result("zero_overlap", f"late~{other.object_id}",
                           0.0 if s == 0.0 else math.inf, 0.0,
                           detail=f"score={s!r}"))
    return out


def _run_anytime_bounds(corpus: VerificationCorpus) -> List[RelationResult]:
    out = []
    pairs = [(corpus.queries[0], corpus.gallery[0]),
             (corpus.queries[1], corpus.gallery[2]),
             (corpus.queries[2], corpus.gallery[4])]
    for q, g in pairs:
        case = f"{q.object_id}~{g.object_id}"
        exact = corpus.measure().similarity(q, g)

        # A 3-term budget may still legitimately *complete* when all
        # remaining Eq. 10 terms fall outside the temporal overlap (they
        # are known-zero without evaluation); the invariants are that
        # the interval brackets the exact score and the budget is obeyed.
        partial = anytime_similarity(corpus.measure(), q, g,
                                     budget=Budget(max_terms=3))
        contain = max(partial.lower - exact, exact - partial.upper, 0.0)
        detail = (f"exact={exact!r} in [{partial.lower!r}, {partial.upper!r}] "
                  f"({partial.evaluated_terms}/{partial.total_terms} terms, "
                  f"completed={partial.completed})")
        out.append(_result("anytime_bounds", f"{case}:partial",
                           contain, 0.0, detail=detail))
        out.append(_result("anytime_bounds", f"{case}:budget-obeyed",
                           float(max(0, partial.evaluated_terms - 3)), 0.0,
                           detail=f"evaluated {partial.evaluated_terms} "
                                  f"of max 3"))

        full = anytime_similarity(corpus.measure(), q, g)
        bitwise = full.completed and full.value == exact
        out.append(_result("anytime_bounds", f"{case}:unbounded",
                           0.0 if bitwise else abs(full.value - exact)
                           if math.isfinite(full.value) else math.inf,
                           0.0,
                           detail=f"anytime={full.value!r} exact={exact!r} "
                                  f"completed={full.completed}"))
    return out


def _run_coarse_rungs(corpus: VerificationCorpus) -> List[RelationResult]:
    out = []
    pairs = [(corpus.queries[0], corpus.gallery[0]),
             (corpus.queries[1], corpus.gallery[2])]
    scorer = DeadlineScorer(corpus.measure())
    for q, g in pairs:
        case = f"{q.object_id}~{g.object_id}"
        exact = corpus.measure().similarity(q, g)
        for factor in (2, 4):
            coarse = scorer.coarse_measure(factor).similarity(q, g)
            violation = max(0.0 - coarse, coarse - 1.0, 0.0)
            if not math.isfinite(coarse):
                violation = math.inf
            out.append(_result("coarse_rungs", f"{case}:coarse-{factor}x",
                               violation, 0.0, detail=f"score={coarse!r}"))
        bound = filter_only_estimate(q, g)
        contain = max(bound.lower - exact, exact - bound.upper, 0.0)
        out.append(_result("coarse_rungs", f"{case}:filter-only",
                           contain, 0.0,
                           detail=f"exact={exact!r} in "
                                  f"[{bound.lower!r}, {bound.upper!r}]"))
    return out


RELATIONS: Dict[str, Relation] = {
    rel.name: rel
    for rel in (
        Relation("symmetry", "Eq. 10",
                 "STS(a, b) == STS(b, a) to round-off", _run_symmetry),
        Relation("unit_range", "Eqs. 9–10",
                 "scores lie in [0, 1]", _run_unit_range),
        Relation("time_shift", "Eqs. 3–10",
                 "joint time translation leaves STS unchanged",
                 _run_time_shift),
        Relation("stp_norm", "Eqs. 3–5",
                 "STP vectors are distributions; observation times "
                 "reduce to the noise model; empty outside the span",
                 _run_stp_norm),
        Relation("zero_overlap", "Eq. 5 case 3",
                 "disjoint spans score exactly zero", _run_zero_overlap),
        Relation("anytime_bounds", "Eq. 10",
                 "anytime intervals bracket the exact score; unbounded "
                 "runs are bitwise exact", _run_anytime_bounds),
        Relation("coarse_rungs", "Eqs. 9–10",
                 "degraded rungs stay valid lower-fidelity answers",
                 _run_coarse_rungs),
    )
}


def run_relations(corpus: Optional[VerificationCorpus] = None,
                  names: Optional[Sequence[str]] = None
                  ) -> List[RelationResult]:
    """Run the selected relations (all by default) on ``corpus``."""
    if corpus is None:
        corpus = verification_corpus()
    if names is None:
        selected = list(RELATIONS)
    else:
        unknown = sorted(set(names) - set(RELATIONS))
        if unknown:
            raise ValueError(
                f"unknown relation(s) {unknown}; "
                f"available: {sorted(RELATIONS)}")
        selected = list(names)
    results: List[RelationResult] = []
    for name in selected:
        results.extend(RELATIONS[name].run(corpus))
    return results
